// Tests for k-means / k-means++ / medoid extraction.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subtab/cluster/kmeans.h"

namespace subtab {
namespace {

/// `clusters` well-separated Gaussian blobs in `dim` dimensions.
std::vector<float> Blobs(size_t clusters, size_t per_cluster, size_t dim,
                         uint64_t seed, double separation = 50.0) {
  Rng rng(seed);
  std::vector<float> points;
  points.reserve(clusters * per_cluster * dim);
  for (size_t c = 0; c < clusters; ++c) {
    for (size_t p = 0; p < per_cluster; ++p) {
      for (size_t d = 0; d < dim; ++d) {
        const double center = (d == c % dim) ? separation * (1.0 + c) : 0.0;
        points.push_back(static_cast<float>(rng.Normal(center, 1.0)));
      }
    }
  }
  return points;
}

TEST(KMeansTest, SquaredDistance) {
  const float a[] = {0, 0, 0};
  const float b[] = {1, 2, 2};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 3), 9.0);
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  const size_t per = 40;
  std::vector<float> points = Blobs(3, per, 4, 1);
  KMeansOptions options;
  options.k = 3;
  options.seed = 5;
  KMeansResult result = KMeans(points, 4, options);
  // All points of one blob share an assignment, and blobs get distinct ones.
  std::set<uint32_t> blob_labels;
  for (size_t blob = 0; blob < 3; ++blob) {
    const uint32_t label = result.assignment[blob * per];
    blob_labels.insert(label);
    for (size_t p = 0; p < per; ++p) {
      EXPECT_EQ(result.assignment[blob * per + p], label);
    }
  }
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeansTest, InertiaDecreasesWithMoreClusters) {
  std::vector<float> points = Blobs(4, 30, 3, 2);
  double prev = 1e30;
  for (size_t k = 1; k <= 4; ++k) {
    KMeansOptions options;
    options.k = k;
    options.seed = 3;
    const KMeansResult result = KMeans(points, 3, options);
    EXPECT_LE(result.inertia, prev + 1e-6);
    prev = result.inertia;
  }
}

TEST(KMeansTest, KEqualsNumPointsGivesZeroInertia) {
  std::vector<float> points = {0, 0, 10, 10, 20, 20};
  KMeansOptions options;
  options.k = 3;
  KMeansResult result = KMeans(points, 2, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, SinglePoint) {
  std::vector<float> points = {1.0f, 2.0f};
  KMeansOptions options;
  options.k = 1;
  KMeansResult result = KMeans(points, 2, options);
  EXPECT_EQ(result.assignment, (std::vector<uint32_t>{0}));
  EXPECT_NEAR(result.centroids[0], 1.0f, 1e-6);
}

TEST(KMeansTest, DeterministicForSeed) {
  std::vector<float> points = Blobs(3, 20, 2, 4);
  KMeansOptions options;
  options.k = 3;
  options.seed = 17;
  KMeansResult a = KMeans(points, 2, options);
  KMeansResult b = KMeans(points, 2, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeansTest, DuplicatePointsDoNotCrash) {
  std::vector<float> points(20, 1.0f);  // 10 identical 2-d points.
  KMeansOptions options;
  options.k = 3;
  KMeansResult result = KMeans(points, 2, options);
  EXPECT_EQ(result.assignment.size(), 10u);
}

class KMeansSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(KMeansSweepTest, AssignmentIsNearestCentroid) {
  // Lloyd invariant: on convergence every point's assigned centroid is at
  // least as close as any other centroid.
  const auto [k, dim] = GetParam();
  std::vector<float> points = Blobs(k, 25, dim, 7 + k + dim);
  KMeansOptions options;
  options.k = k;
  options.max_iterations = 100;
  options.seed = 23;
  const KMeansResult result = KMeans(points, dim, options);
  const size_t n = points.size() / dim;
  for (size_t p = 0; p < n; ++p) {
    const double assigned = SquaredDistance(
        points.data() + p * dim,
        result.centroids.data() + result.assignment[p] * dim, dim);
    for (size_t c = 0; c < k; ++c) {
      const double d =
          SquaredDistance(points.data() + p * dim, result.centroids.data() + c * dim, dim);
      EXPECT_GE(d + 1e-5, assigned);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, KMeansSweepTest,
                         ::testing::Combine(::testing::Values(2, 4, 7),
                                            ::testing::Values(2, 8, 16)));

TEST(MedoidTest, MedoidsAreDistinctRealPoints) {
  std::vector<float> points = Blobs(4, 15, 3, 9);
  KMeansOptions options;
  options.k = 4;
  const KMeansResult result = KMeans(points, 3, options);
  const std::vector<size_t> medoids = SelectMedoids(points, 3, result);
  EXPECT_EQ(medoids.size(), 4u);
  std::set<size_t> unique(medoids.begin(), medoids.end());
  EXPECT_EQ(unique.size(), 4u);
  for (size_t m : medoids) EXPECT_LT(m, points.size() / 3);
}

TEST(MedoidTest, MedoidsComeFromTheirClusters) {
  const size_t per = 30;
  std::vector<float> points = Blobs(3, per, 2, 10);
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = KMeans(points, 2, options);
  const std::vector<size_t> medoids = SelectMedoids(points, 2, result);
  // Each blob contributes exactly one medoid.
  std::set<size_t> blobs;
  for (size_t m : medoids) blobs.insert(m / per);
  EXPECT_EQ(blobs.size(), 3u);
}

TEST(MedoidTest, ClusterRepresentativesConvenience) {
  std::vector<float> points = Blobs(2, 10, 2, 11);
  KMeansOptions options;
  options.k = 2;
  const std::vector<size_t> reps = ClusterRepresentatives(points, 2, options);
  EXPECT_EQ(reps.size(), 2u);
  EXPECT_NE(reps[0], reps[1]);
}

TEST(MedoidTest, KEqualsNReturnsEveryPoint) {
  std::vector<float> points = {0, 0, 5, 5, 9, 9};
  KMeansOptions options;
  options.k = 3;
  const KMeansResult result = KMeans(points, 2, options);
  std::vector<size_t> medoids = SelectMedoids(points, 2, result);
  std::sort(medoids.begin(), medoids.end());
  EXPECT_EQ(medoids, (std::vector<size_t>{0, 1, 2}));
}

TEST(KMeansTest, BlockedKernelBitIdenticalToReferenceKernel) {
  // The register-blocked assignment kernel must reproduce the pre-refactor
  // one-chain-per-centroid loop EXACTLY: centroids, assignments, inertia,
  // iteration counts, and medoids, across dimensions that exercise the
  // 8-wide, 4-wide, and scalar-tail block paths and k values around the
  // block boundaries (including duplicate points, which force distance
  // ties). This is the bit-identical-selections guarantee at its root.
  for (size_t dim : {1u, 3u, 8u, 13u, 32u}) {
    for (size_t k : {1u, 4u, 7u, 8u, 9u, 16u}) {
      std::vector<float> points = Blobs(4, 30, dim, 1000 + dim * 31 + k);
      // Duplicate a run of points to create exact ties.
      points.insert(points.end(), points.begin(),
                    points.begin() + static_cast<long>(8 * dim));
      KMeansOptions options;
      options.k = k;
      options.n_init = 2;
      options.seed = 91 + k;

      SetKMeansReferenceKernel(true);
      const KMeansResult reference = KMeans(points, dim, options);
      const std::vector<size_t> reference_medoids =
          SelectMedoids(points, dim, reference);
      SetKMeansReferenceKernel(false);
      const KMeansResult blocked = KMeans(points, dim, options);
      const std::vector<size_t> blocked_medoids =
          SelectMedoids(points, dim, blocked);

      ASSERT_EQ(blocked.assignment, reference.assignment)
          << "dim=" << dim << " k=" << k;
      ASSERT_EQ(blocked.centroids, reference.centroids);
      ASSERT_EQ(blocked.inertia, reference.inertia);  // Bitwise, not approx.
      ASSERT_EQ(blocked.iterations, reference.iterations);
      ASSERT_EQ(blocked_medoids, reference_medoids);
    }
  }
}

}  // namespace
}  // namespace subtab
