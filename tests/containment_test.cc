// Tests for containment-based selection-cache reuse (the drill-down tier):
// the ScopeIndex primitive, the canonical-interval cache-key merge, and the
// engine's restricted-scan path — randomized drill-down chains served
// through containment must be bit-identical to direct SubTab::SelectForQuery,
// under index eviction mid-chain and across stream-version invalidation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "subtab/service/engine.h"
#include "subtab/service/selection_cache.h"
#include "subtab/stream/stream_session.h"

namespace subtab {
namespace {

using service::AncestorScope;
using service::EngineOptions;
using service::NormalizedQueryKey;
using service::ScopeIndex;
using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;
using stream::StreamSession;
using stream::StreamSessionOptions;

/// Deterministic table with enough rows/values for meaningful drill-downs:
/// numeric a in [0, 60), numeric b cycling with nulls, categorical c.
Table DrillTable(size_t n = 120, size_t offset = 0) {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (size_t i = offset; i < offset + n; ++i) {
    a.push_back(static_cast<double>(i % 60));
    b.push_back(i % 11 == 0 ? std::nan("") : static_cast<double>(i % 7) * 2.5);
    c.push_back(i % 3 == 0 ? "x" : i % 3 == 1 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

SubTabConfig DrillConfig(uint64_t seed = 7) {
  SubTabConfig config;
  config.k = 4;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

SpQuery Where(std::vector<Predicate> filters) {
  SpQuery q;
  q.filters = std::move(filters);
  return q;
}

std::shared_ptr<const std::vector<size_t>> Rows(std::vector<size_t> rows) {
  return std::make_shared<const std::vector<size_t>>(std::move(rows));
}

// ------------------------------------------------------------ ScopeIndex --

TEST(ScopeIndexTest, FindsNearestAncestor) {
  ScopeIndex index(8);
  const SpQuery broad = Where({Predicate::Num("a", CmpOp::kGe, 0.0)});
  const SpQuery mid = Where({Predicate::Num("a", CmpOp::kGe, 20.0)});
  index.Insert(1, broad, Rows({0, 1, 2, 3, 4, 5}));
  index.Insert(1, mid, Rows({3, 4, 5}));

  // Both contain a >= 30; the smaller (mid) scope wins.
  auto hit = index.FindAncestor(1, Where({Predicate::Num("a", CmpOp::kGe, 30.0)}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rows->size(), 3u);
  EXPECT_EQ(hit->query.filters[0].num_literal, 20.0);

  // A query only the broad scope contains picks the broad one.
  hit = index.FindAncestor(1, Where({Predicate::Num("a", CmpOp::kGe, 10.0)}));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->rows->size(), 6u);

  // No containing ancestor: an unrelated column.
  EXPECT_FALSE(index.FindAncestor(1, Where({Predicate::Num("b", CmpOp::kLe, 1.0)}))
                   .has_value());
  // Wrong model digest: the index is per model version.
  EXPECT_FALSE(index.FindAncestor(2, Where({Predicate::Num("a", CmpOp::kGe, 30.0)}))
                   .has_value());
}

TEST(ScopeIndexTest, OnlyOrderFreeLimitFreeQueriesAreIndexable) {
  SpQuery ordered = Where({Predicate::Num("a", CmpOp::kGe, 0.0)});
  ordered.order_by = "a";
  SpQuery limited = Where({Predicate::Num("a", CmpOp::kGe, 0.0)});
  limited.limit = 5;
  SpQuery projected = Where({Predicate::Num("a", CmpOp::kGe, 0.0)});
  projected.projection = {"a"};
  EXPECT_FALSE(ScopeIndex::Indexable(ordered));
  EXPECT_FALSE(ScopeIndex::Indexable(limited));
  EXPECT_TRUE(ScopeIndex::Indexable(projected));  // Projection is row-free.
  EXPECT_TRUE(ScopeIndex::Indexable(SpQuery{}));
}

TEST(ScopeIndexTest, PerModelLruEviction) {
  ScopeIndex index(2);
  index.Insert(1, Where({Predicate::Num("a", CmpOp::kGe, 0.0)}), Rows({0, 1, 2}));
  index.Insert(1, Where({Predicate::Num("a", CmpOp::kGe, 10.0)}), Rows({1, 2}));
  // Probe refreshes nothing (probes are reads of a scan-shaped structure);
  // the third insert evicts the oldest entry.
  index.Insert(1, Where({Predicate::Num("a", CmpOp::kGe, 20.0)}), Rows({2}));
  EXPECT_EQ(index.entries(), 2u);
  EXPECT_FALSE(index.FindAncestor(1, Where({Predicate::Num("a", CmpOp::kGe, 5.0)}))
                   .has_value());  // The broad scope was evicted.

  // Re-inserting an equivalent conjunction (reordered, redundant bound)
  // refreshes the one entry rather than duplicating it.
  index.Insert(1,
               Where({Predicate::Num("a", CmpOp::kGe, 10.0),
                      Predicate::Num("a", CmpOp::kGe, 5.0)}),
               Rows({1, 2}));
  EXPECT_EQ(index.entries(), 2u);
}

TEST(ScopeIndexTest, RowBudgetBoundsIndexedScopes) {
  // Memory is bounded by ROWS, not entries: scopes can approach table size.
  ScopeIndex index(/*per_model_capacity=*/8, /*per_model_row_budget=*/5);
  index.Insert(1, Where({Predicate::Num("a", CmpOp::kGe, 0.0)}), Rows({0, 1, 2}));
  EXPECT_EQ(index.entries(), 1u);
  // 3 + 4 rows exceeds the budget of 5: the older scope is evicted.
  index.Insert(1, Where({Predicate::Num("a", CmpOp::kGe, 10.0)}),
               Rows({0, 1, 2, 3}));
  EXPECT_EQ(index.entries(), 1u);
  EXPECT_FALSE(index.FindAncestor(1, Where({Predicate::Num("a", CmpOp::kGe, 5.0)}))
                   .has_value());
  // A single scope larger than the whole budget is not indexed at all —
  // the broad b-scope never lands, so nothing contains a b refinement.
  index.Insert(1, Where({Predicate::Num("b", CmpOp::kGe, 0.0)}),
               Rows({0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(index.entries(), 1u);
  EXPECT_FALSE(index.FindAncestor(1, Where({Predicate::Num("b", CmpOp::kGe, 30.0)}))
                   .has_value());
}

TEST(ScopeIndexTest, InvalidateModelSweepsOnlyThatModel) {
  ScopeIndex index(8);
  index.Insert(1, Where({Predicate::Num("a", CmpOp::kGe, 0.0)}), Rows({0, 1}));
  index.Insert(1, Where({Predicate::Num("a", CmpOp::kGe, 10.0)}), Rows({1}));
  index.Insert(2, Where({Predicate::Num("a", CmpOp::kGe, 0.0)}), Rows({0}));
  EXPECT_EQ(index.entries(), 3u);
  EXPECT_EQ(index.InvalidateModel(1), 2u);
  EXPECT_EQ(index.entries(), 1u);
  EXPECT_FALSE(index.FindAncestor(1, Where({Predicate::Num("a", CmpOp::kGe, 20.0)}))
                   .has_value());
  EXPECT_TRUE(index.FindAncestor(2, Where({Predicate::Num("a", CmpOp::kGe, 20.0)}))
                  .has_value());
  EXPECT_EQ(index.InvalidateModel(1), 0u);  // Idempotent.
}

// ------------------------------------------- NormalizedQueryKey merging --

TEST(NormalizedKeyTest, MergesOverlappingIntervalsOnOneColumn) {
  // Equivalent conjunctions must share one cache entry: a session that
  // re-tightens a bound it already holds ("a >= 1 AND a >= 2" after "a >= 2")
  // must hit, not rescan.
  const SpQuery tight = Where({Predicate::Num("a", CmpOp::kGe, 2.0)});
  const SpQuery redundant = Where({Predicate::Num("a", CmpOp::kGe, 1.0),
                                   Predicate::Num("a", CmpOp::kGe, 2.0)});
  EXPECT_EQ(NormalizedQueryKey(tight), NormalizedQueryKey(redundant));

  const SpQuery strict = Where({Predicate::Num("a", CmpOp::kGt, 2.0)});
  const SpQuery strict_redundant = Where({Predicate::Num("a", CmpOp::kGe, 2.0),
                                          Predicate::Num("a", CmpOp::kGt, 2.0)});
  EXPECT_EQ(NormalizedQueryKey(strict), NormalizedQueryKey(strict_redundant));

  // Upper bounds merge too, independently of the lower side.
  EXPECT_EQ(NormalizedQueryKey(Where({Predicate::Num("a", CmpOp::kLt, 4.0),
                                      Predicate::Num("a", CmpOp::kGe, 1.0)})),
            NormalizedQueryKey(Where({Predicate::Num("a", CmpOp::kLe, 9.0),
                                      Predicate::Num("a", CmpOp::kLt, 4.0),
                                      Predicate::Num("a", CmpOp::kGe, 1.0)})));

  // Distinct row sets must NOT merge: different columns, eq vs bound,
  // strict vs non-strict at different values.
  EXPECT_NE(NormalizedQueryKey(Where({Predicate::Num("a", CmpOp::kGe, 1.0)})),
            NormalizedQueryKey(Where({Predicate::Num("b", CmpOp::kGe, 1.0)})));
  EXPECT_NE(NormalizedQueryKey(Where({Predicate::Num("a", CmpOp::kEq, 2.0)})),
            NormalizedQueryKey(tight));
  EXPECT_NE(NormalizedQueryKey(strict), NormalizedQueryKey(tight));
}

// --------------------------------------------------- Engine drill-downs --

/// One drill-down chain: successive refinements of a base filter, the shape
/// Smart Drill-Down sessions take. `variant` picks the refinement style.
std::vector<SpQuery> MakeChain(int variant, double base) {
  std::vector<SpQuery> chain;
  SpQuery q = Where({Predicate::Num("a", CmpOp::kGe, base)});
  chain.push_back(q);
  switch (variant % 3) {
    case 0:  // Tighten the same bound twice, then add a category.
      q.filters[0].num_literal = base + 10.0;
      chain.push_back(q);
      q.filters[0].num_literal = base + 20.0;
      chain.push_back(q);
      q.filters.push_back(Predicate::Str("c", CmpOp::kEq, "x"));
      chain.push_back(q);
      break;
    case 1:  // Add conjuncts one at a time.
      q.filters.push_back(Predicate::Num("b", CmpOp::kLe, 12.5));
      chain.push_back(q);
      q.filters.push_back(Predicate::Str("c", CmpOp::kNe, "z"));
      chain.push_back(q);
      break;
    default:  // Refine, then a sorted/limited leaf (restrictable, not indexable).
      q.filters.push_back(Predicate::NotNull("b"));
      chain.push_back(q);
      q.order_by = "a";
      q.descending = true;
      q.limit = 7;
      chain.push_back(q);
      break;
  }
  return chain;
}

TEST(ContainmentEngineTest, DrillDownChainsBitIdenticalToDirectSelection) {
  EngineOptions options;
  options.num_threads = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), DrillConfig()).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("t");
  ASSERT_NE(model, nullptr);

  std::mt19937 rng(42);
  std::uniform_real_distribution<double> base(0.0, 15.0);
  size_t served = 0;
  for (int trial = 0; trial < 9; ++trial) {
    for (const SpQuery& query : MakeChain(trial, base(rng))) {
      SelectRequest request;
      request.table_id = "t";
      request.query = query;
      // A fresh seed per step defeats the exact-match tier, so every step
      // exercises a scan — the containment tier's job.
      request.seed = 1000 + trial * 100 + static_cast<uint64_t>(served);
      SelectResponse response = engine.Select(request);
      Result<SubTabView> direct = model->SelectForQuery(
          query, std::nullopt, std::nullopt, request.seed);
      ASSERT_TRUE(response.status.ok());
      ASSERT_TRUE(direct.ok());
      EXPECT_EQ(response.view->row_ids, direct->row_ids) << query.ToString();
      EXPECT_EQ(response.view->col_ids, direct->col_ids) << query.ToString();
      ++served;
    }
  }
  const service::EngineStats stats = engine.Stats();
  // The chains actually went through the containment tier, and restricted
  // scans visited fewer rows than the full scans they replaced.
  EXPECT_GT(stats.containment.containment_hits, 0u);
  EXPECT_GT(stats.containment.scope_entries, 0u);
  ASSERT_GT(stats.containment.full_scan_rows, 0u);
  const double avg_restricted =
      static_cast<double>(stats.containment.restricted_scan_rows) /
      static_cast<double>(stats.containment.containment_hits);
  EXPECT_LT(avg_restricted, static_cast<double>(DrillTable().num_rows()));
}

TEST(ContainmentEngineTest, DisabledReuseMatchesEnabledReuse) {
  // The same request stream with containment on and off must produce
  // identical views — reuse changes cost, never results.
  EngineOptions on;
  on.num_threads = 1;
  EngineOptions off = on;
  off.containment_reuse = false;
  ServingEngine with(on);
  ServingEngine without(off);
  ASSERT_TRUE(with.RegisterTable("t", DrillTable(), DrillConfig()).ok());
  ASSERT_TRUE(without.RegisterTable("t", DrillTable(), DrillConfig()).ok());

  for (int trial = 0; trial < 6; ++trial) {
    for (const SpQuery& query : MakeChain(trial, 3.0 * trial)) {
      SelectRequest request;
      request.table_id = "t";
      request.query = query;
      request.seed = 500 + trial;
      SelectResponse a = with.Select(request);
      SelectResponse b = without.Select(request);
      ASSERT_EQ(a.status.ok(), b.status.ok()) << query.ToString();
      if (!a.status.ok()) continue;  // Empty-result steps cache as errors.
      EXPECT_EQ(a.view->row_ids, b.view->row_ids);
      EXPECT_EQ(a.view->col_ids, b.view->col_ids);
    }
  }
  EXPECT_EQ(without.Stats().containment.containment_hits, 0u);
  EXPECT_EQ(without.Stats().containment.scope_entries, 0u);
}

TEST(ContainmentEngineTest, EvictionMidChainStaysCorrect) {
  // A scope index bounded to ONE entry per model evicts the parent scope
  // mid-chain; later steps fall back to full scans and stay bit-identical.
  EngineOptions options;
  options.num_threads = 1;
  options.scope_index_per_model = 1;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), DrillConfig()).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("t");

  // Interleave two unrelated chains so each insert evicts the other chain's
  // scope; every step still must match the direct path.
  std::vector<SpQuery> chain_a = MakeChain(0, 0.0);
  std::vector<SpQuery> chain_b = MakeChain(1, 8.0);
  for (size_t i = 0; i < std::max(chain_a.size(), chain_b.size()); ++i) {
    for (const std::vector<SpQuery>* chain : {&chain_a, &chain_b}) {
      if (i >= chain->size()) continue;
      SelectRequest request;
      request.table_id = "t";
      request.query = (*chain)[i];
      request.seed = 9000 + i;
      SelectResponse response = engine.Select(request);
      Result<SubTabView> direct = model->SelectForQuery(
          request.query, std::nullopt, std::nullopt, request.seed);
      ASSERT_EQ(response.status.ok(), direct.ok());
      if (!direct.ok()) continue;
      EXPECT_EQ(response.view->row_ids, direct->row_ids);
      EXPECT_EQ(response.view->col_ids, direct->col_ids);
    }
  }
  EXPECT_LE(engine.Stats().containment.scope_entries, 1u);
}

TEST(ContainmentEngineTest, VersionInvalidationSweepsContainmentEntries) {
  StreamSessionOptions stream_options;
  stream_options.config = DrillConfig();
  stream_options.policy.max_out_of_range_rate = 1.0;
  stream_options.policy.max_new_category_rate = 1.0;
  stream_options.policy.staleness_budget = 1e9;
  stream_options.policy.incremental_threshold = 1e9;
  auto session = StreamSession::Open(DrillTable(60), std::move(stream_options));
  ASSERT_TRUE(session.ok());
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());

  // Seed the containment index under version 0.
  SelectRequest request;
  request.table_id = "live";
  request.query = Where({Predicate::Num("a", CmpOp::kGe, 5.0)});
  ASSERT_TRUE(engine.Select(request).status.ok());
  ASSERT_GT(engine.Stats().containment.scope_entries, 0u);

  // Republishing under version 1 sweeps the superseded version's scopes:
  // its row ids are meaningless against the new snapshot.
  ASSERT_TRUE(engine.Append("live", DrillTable(20, 60)).ok());
  const service::EngineStats swept = engine.Stats();
  EXPECT_EQ(swept.containment.scope_entries, 0u);
  EXPECT_GT(swept.containment.scope_invalidations, 0u);

  // Drill-downs against the new version are correct and re-seed the index.
  std::shared_ptr<const SubTab> model = engine.GetModel("live");
  ASSERT_EQ(model->table().num_rows(), 80u);
  SelectRequest refined;
  refined.table_id = "live";
  refined.query = Where({Predicate::Num("a", CmpOp::kGe, 5.0),
                         Predicate::Str("c", CmpOp::kEq, "x")});
  SelectResponse response = engine.Select(refined);
  Result<SubTabView> direct = model->SelectForQuery(refined.query);
  ASSERT_TRUE(response.status.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response.view->row_ids, direct->row_ids);
  EXPECT_EQ(response.view->col_ids, direct->col_ids);
  EXPECT_GT(engine.Stats().containment.scope_entries, 0u);
}

TEST(ContainmentEngineTest, ReRegisteringAnIdSweepsTheOldContentsScopes) {
  // A binding swap is the one path that retires content without a stream
  // publication; it must sweep the old content's scope bucket or the
  // bucket (unbounded across digests) leaks for the engine's lifetime.
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(60), DrillConfig()).ok());
  SelectRequest request;
  request.table_id = "t";
  request.query = Where({Predicate::Num("a", CmpOp::kGe, 30.0)});
  ASSERT_TRUE(engine.Select(request).status.ok());
  ASSERT_GT(engine.Stats().containment.scope_entries, 0u);

  // Different content under the same id: the old scopes must go...
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(60, 7), DrillConfig()).ok());
  service::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.containment.scope_entries, 0u);
  EXPECT_GT(stats.containment.scope_invalidations, 0u);

  // ...unless another id still serves that content (shared digest).
  ASSERT_TRUE(engine.RegisterTable("u", DrillTable(60, 7), DrillConfig()).ok());
  ASSERT_TRUE(engine.Select(request).status.ok());  // Seed under new content.
  const uint64_t invalidated_before =
      engine.Stats().containment.scope_invalidations;
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(60), DrillConfig()).ok());
  stats = engine.Stats();
  EXPECT_GT(stats.containment.scope_entries, 0u);  // "u" keeps them alive.
  EXPECT_EQ(stats.containment.scope_invalidations, invalidated_before);
}

TEST(ContainmentEngineTest, RefreshUpgradePreservesScopesVersionBumpSweeps) {
  // Resolved scopes depend on (table rows, filters) only — a background
  // upgrade retrains the embedding over the SAME rows, so it must sweep
  // the exact tier (selections changed) but keep the containment tier
  // (scopes did not). Only a content version bump sweeps scopes.
  StreamSessionOptions options;
  options.config = DrillConfig();
  options.background_refresh = true;
  options.policy.max_out_of_range_rate = 1.0;
  options.policy.max_new_category_rate = 1.0;
  options.policy.staleness_budget = 1e9;
  options.policy.incremental_threshold = 0.0;  // Always wants an upgrade.
  options.policy.max_background_lag = 1e9;     // Never forces inline.
  auto session = StreamSession::Open(DrillTable(60), std::move(options));
  ASSERT_TRUE(session.ok());
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());

  // Version bump (fold-in publishes immediately), then seed the index and
  // let the deferred upgrade republish the SAME version.
  ASSERT_TRUE(engine.Append("live", DrillTable(20, 60)).ok());
  SelectRequest request;
  request.table_id = "live";
  request.query = Where({Predicate::Num("a", CmpOp::kGe, 30.0)});
  ASSERT_TRUE(engine.Select(request).status.ok());
  const size_t seeded = engine.Stats().containment.scope_entries;
  ASSERT_GT(seeded, 0u);

  (*session)->WaitForUpgrades();
  engine.Drain();
  service::EngineStats stats = engine.Stats();
  ASSERT_GT(stats.streaming.upgrades_completed, 0u);
  // The indexed scopes survived the upgrade: same rows, same filter
  // scopes. (The exact tier's per-publication sweep is pinned by
  // stream_test; its count here depends on upgrade/select timing.)
  EXPECT_EQ(stats.containment.scope_entries, seeded);
  EXPECT_EQ(stats.containment.scope_invalidations, 0u);

  // A refinement right after the upgrade reuses the surviving scope.
  SelectRequest refined;
  refined.table_id = "live";
  refined.query = Where({Predicate::Num("a", CmpOp::kGe, 40.0)});
  SelectResponse response = engine.Select(refined);
  ASSERT_TRUE(response.status.ok());
  stats = engine.Stats();
  EXPECT_GT(stats.containment.containment_hits, 0u);
  Result<SubTabView> direct = engine.GetModel("live")->SelectForQuery(refined.query);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(response.view->row_ids, direct->row_ids);

  // A content version bump DOES sweep the scopes.
  ASSERT_TRUE(engine.Append("live", DrillTable(10, 80)).ok());
  (*session)->WaitForUpgrades();
  stats = engine.Stats();
  EXPECT_GT(stats.containment.scope_invalidations, 0u);
}

TEST(ContainmentEngineTest, ConcurrentChainsWithAppendsStayCorrect) {
  // The TSan meat: four analyst threads drilling down concurrently while a
  // fifth appends batches (sweeping the containment index per republish).
  // Every response must equal the direct path on whatever model version the
  // engine served it from — correctness under concurrent probe / insert /
  // invalidate, not a fixed-version golden.
  StreamSessionOptions stream_options;
  stream_options.config = DrillConfig();
  stream_options.policy.max_out_of_range_rate = 1.0;
  stream_options.policy.max_new_category_rate = 1.0;
  stream_options.policy.staleness_budget = 1e9;
  stream_options.policy.incremental_threshold = 1e9;
  auto session = StreamSession::Open(DrillTable(60), std::move(stream_options));
  ASSERT_TRUE(session.ok());
  EngineOptions options;
  options.num_threads = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());

  std::atomic<bool> stop{false};
  std::thread appender([&engine, &stop] {
    for (size_t b = 0; b < 3 && !stop.load(); ++b) {
      ASSERT_TRUE(engine.Append("live", DrillTable(10, 60 + b * 10)).ok());
    }
  });
  std::vector<std::thread> analysts;
  for (int t = 0; t < 4; ++t) {
    analysts.emplace_back([&engine, t] {
      for (int round = 0; round < 3; ++round) {
        for (const SpQuery& query : MakeChain(t, 2.0 * t + round)) {
          SelectRequest request;
          request.table_id = "live";
          request.query = query;
          request.seed = 100 + t * 50 + round;
          SelectResponse response = engine.Select(request);
          if (!response.status.ok()) continue;  // Empty result on some version.
          // Per-version bit-identity is pinned by the sequential
          // differential tests; under concurrent appends this pins
          // well-formedness of whatever version served: a k-bounded,
          // ascending row selection within the largest possible snapshot.
          EXPECT_FALSE(response.view->row_ids.empty());
          EXPECT_LE(response.view->row_ids.size(), size_t{4});  // k = 4.
          EXPECT_TRUE(std::is_sorted(response.view->row_ids.begin(),
                                     response.view->row_ids.end()));
          EXPECT_LT(response.view->row_ids.back(), size_t{90});
        }
      }
    });
  }
  for (auto& t : analysts) t.join();
  stop.store(true);
  appender.join();
  engine.Drain();
  const service::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.requests_submitted, stats.requests_completed);
}

TEST(ContainmentEngineTest, ToJsonEmitsContainmentSection) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), DrillConfig()).ok());
  engine.Select({.table_id = "t",
                 .query = Where({Predicate::Num("a", CmpOp::kGe, 1.0)}),
                 .k = {},
                 .l = {},
                 .seed = {}});
  const std::string json = engine.Stats().ToJson();
  for (const char* field :
       {"\"containment\":{", "\"restricted_scan_rows\":", "\"full_scan_rows\":",
        "\"scope_entries\":", "\"scope_invalidations\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " in " << json;
  }
}

}  // namespace
}  // namespace subtab
