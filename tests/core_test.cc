// Tests for the SubTab core: config validation, pre-processing, centroid
// selection (Algorithm 2), the facade, and rule highlighting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subtab/core/highlight.h"
#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/rules/miner.h"

namespace subtab {
namespace {

/// Small fast config for tests.
SubTabConfig TestConfig() {
  SubTabConfig config;
  config.k = 5;
  config.l = 4;
  config.embedding.dim = 16;
  config.embedding.epochs = 2;
  config.seed = 77;
  return config;
}

GeneratedDataset SmallFlights() { return MakeFlights(800, 5); }

// ----------------------------------------------------------------- Config --

TEST(ConfigTest, DefaultsValidate) {
  SubTabConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.k, 10u);
  EXPECT_EQ(config.l, 10u);
  EXPECT_DOUBLE_EQ(config.alpha, 0.5);
  EXPECT_EQ(config.binning.num_bins, 5u);            // Paper default.
  EXPECT_EQ(config.corpus.max_sentences, 100000u);   // Paper's 100K cap.
}

TEST(ConfigTest, RejectsBadValues) {
  SubTabConfig config;
  config.k = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SubTabConfig{};
  config.alpha = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = SubTabConfig{};
  config.l = 2;
  config.target_columns = {"a", "b", "c"};
  EXPECT_FALSE(config.Validate().ok());
  config = SubTabConfig{};
  config.embedding.dim = 0;
  EXPECT_FALSE(config.Validate().ok());
}

// ------------------------------------------------------------- Preprocess --

TEST(PreprocessTest, ProducesModelOverAllTokens) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  EXPECT_EQ(pre.binned().num_rows(), data.table.num_rows());
  EXPECT_EQ(pre.binned().num_columns(), data.table.num_columns());
  EXPECT_EQ(pre.cell_model().word2vec().vocab_size(), pre.binned().total_bins());
  EXPECT_GT(pre.timings().total_seconds, 0.0);
  EXPECT_GE(pre.timings().training_seconds, 0.0);
}

TEST(PreprocessTest, MoveKeepsCellModelValid) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  PreprocessedTable moved = std::move(pre);
  // The cell model's internal pointer must survive the move.
  EXPECT_EQ(&moved.cell_model().binned(), &moved.binned());
  const auto v = moved.cell_model().CellVector(0, 0);
  EXPECT_EQ(v.size(), moved.cell_model().dim());
}

// -------------------------------------------------------------- Selection --

TEST(SelectTest, ReturnsRequestedShape) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  Selection sel = SelectSubTable(pre, 5, 4, scope, 1);
  EXPECT_EQ(sel.row_ids.size(), 5u);
  EXPECT_EQ(sel.col_ids.size(), 4u);
  // Distinct, in-range, sorted ids.
  std::set<size_t> rows(sel.row_ids.begin(), sel.row_ids.end());
  EXPECT_EQ(rows.size(), 5u);
  for (size_t r : sel.row_ids) EXPECT_LT(r, data.table.num_rows());
  EXPECT_TRUE(std::is_sorted(sel.col_ids.begin(), sel.col_ids.end()));
}

TEST(SelectTest, TargetColumnsAlwaysIncluded) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  const size_t cancelled = data.ColumnIndex("CANCELLED");
  SelectionScope scope;
  scope.target_cols = {cancelled};
  Selection sel = SelectSubTable(pre, 5, 4, scope, 2);
  EXPECT_NE(std::find(sel.col_ids.begin(), sel.col_ids.end(), cancelled),
            sel.col_ids.end());
  EXPECT_EQ(sel.col_ids.size(), 4u);
}

TEST(SelectTest, SmallScopeReturnsEverything) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  scope.rows = {3, 9, 11};
  scope.cols = {0, 5};
  Selection sel = SelectSubTable(pre, 10, 10, scope, 3);
  EXPECT_EQ(sel.row_ids, scope.rows);
  EXPECT_EQ(sel.col_ids, scope.cols);
}

TEST(SelectTest, ScopedSelectionStaysInScope) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  for (size_t r = 100; r < 400; ++r) scope.rows.push_back(r);
  for (size_t c = 2; c < 20; ++c) scope.cols.push_back(c);
  Selection sel = SelectSubTable(pre, 6, 5, scope, 4);
  EXPECT_EQ(sel.row_ids.size(), 6u);
  EXPECT_EQ(sel.col_ids.size(), 5u);
  for (size_t r : sel.row_ids) {
    EXPECT_GE(r, 100u);
    EXPECT_LT(r, 400u);
  }
  for (size_t c : sel.col_ids) {
    EXPECT_GE(c, 2u);
    EXPECT_LT(c, 20u);
  }
}

TEST(SelectTest, DeterministicForSeed) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  Selection a = SelectSubTable(pre, 5, 4, scope, 9);
  Selection b = SelectSubTable(pre, 5, 4, scope, 9);
  EXPECT_EQ(a.row_ids, b.row_ids);
  EXPECT_EQ(a.col_ids, b.col_ids);
}

// ----------------------------------------------------------------- Facade --

TEST(SubTabTest, FitRejectsBadInput) {
  SubTabConfig config = TestConfig();
  EXPECT_FALSE(SubTab::Fit(Table{}, config).ok());
  GeneratedDataset data = SmallFlights();
  config.target_columns = {"NO_SUCH_COLUMN"};
  EXPECT_FALSE(SubTab::Fit(data.table, config).ok());
}

TEST(SubTabTest, SelectProducesViewWithMaterializedTable) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.table.num_rows(), 5u);
  EXPECT_EQ(view.table.num_columns(), 4u);
  EXPECT_EQ(view.row_ids.size(), 5u);
  EXPECT_EQ(view.col_ids.size(), 4u);
  // The materialized cells match the source table.
  for (size_t r = 0; r < view.row_ids.size(); ++r) {
    for (size_t c = 0; c < view.col_ids.size(); ++c) {
      EXPECT_EQ(view.table.column(c).ToDisplay(r),
                data.table.column(view.col_ids[c]).ToDisplay(view.row_ids[r]));
    }
  }
}

TEST(SubTabTest, DimensionOverrides) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select(3, 6);
  EXPECT_EQ(view.table.num_rows(), 3u);
  EXPECT_EQ(view.table.num_columns(), 6u);
}

TEST(SubTabTest, TargetColumnResolvedAndIncluded) {
  GeneratedDataset data = SmallFlights();
  SubTabConfig config = TestConfig();
  config.target_columns = {"CANCELLED"};
  Result<SubTab> st = SubTab::Fit(data.table, config);
  ASSERT_TRUE(st.ok());
  const size_t cancelled = data.ColumnIndex("CANCELLED");
  EXPECT_EQ(st->target_column_ids(), (std::vector<size_t>{cancelled}));
  SubTabView view = st->Select();
  EXPECT_NE(std::find(view.col_ids.begin(), view.col_ids.end(), cancelled),
            view.col_ids.end());
}

TEST(SubTabTest, SelectForQueryRestrictsToResult) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SpQuery q;
  q.filters = {Predicate::Str("CANCELLED", CmpOp::kEq, "1")};
  Result<SubTabView> view = st->SelectForQuery(q);
  ASSERT_TRUE(view.ok());
  // All selected rows must satisfy the query.
  const Column& cancelled = data.table.column("CANCELLED");
  for (size_t r : view->row_ids) {
    ASSERT_FALSE(cancelled.is_null(r));
    EXPECT_EQ(cancelled.cat_value(r), "1");
  }
}

TEST(SubTabTest, SelectForQueryWithProjection) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SpQuery q;
  q.projection = {"AIRLINE", "DISTANCE", "AIR_TIME", "CANCELLED", "DEPARTURE_DELAY"};
  Result<SubTabView> view = st->SelectForQuery(q, 4, 3);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->col_ids.size(), 3u);
  for (size_t c : view->col_ids) {
    const std::string& name = data.table.column(c).name();
    EXPECT_TRUE(std::find(q.projection.begin(), q.projection.end(), name) !=
                q.projection.end());
  }
}

TEST(SubTabTest, EmptyQueryResultErrors) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SpQuery q;
  q.filters = {Predicate::Str("AIRLINE", CmpOp::kEq, "NO_SUCH_AIRLINE")};
  EXPECT_FALSE(st->SelectForQuery(q).ok());
}

TEST(SubTabTest, QuerySelectionIsFasterThanPreprocessing) {
  // The architectural claim of Fig. 1/9: per-query selection reuses the
  // embedding and costs far less than pre-processing.
  GeneratedDataset data = MakeFlights(3000, 6);
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_LT(view.selection_seconds, st->preprocessed().timings().total_seconds);
}

// -------------------------------------------------------------- Highlight --

TEST(HighlightTest, AtMostOneRulePerRowAndValidCells) {
  GeneratedDataset data = SmallFlights();
  SubTabConfig config = TestConfig();
  config.l = 8;
  Result<SubTab> st = SubTab::Fit(data.table, config);
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();

  RuleMiningOptions mining;
  mining.apriori.min_support = 0.05;
  mining.min_confidence = 0.5;
  RuleSet rules = MineRules(st->preprocessed().binned(), mining);
  std::vector<RowHighlight> highlights =
      HighlightRules(st->preprocessed().binned(), rules, view);

  std::set<size_t> rows_seen;
  for (const RowHighlight& h : highlights) {
    EXPECT_TRUE(rows_seen.insert(h.view_row).second);  // One rule per row.
    EXPECT_LT(h.view_row, view.row_ids.size());
    EXPECT_LT(h.rule_index, rules.size());
    EXPECT_FALSE(h.view_cols.empty());
    for (size_t c : h.view_cols) EXPECT_LT(c, view.col_ids.size());
    // The rule actually holds for the source row.
    EXPECT_TRUE(rules.rules[h.rule_index].HoldsForRow(st->preprocessed().binned(),
                                                      view.row_ids[h.view_row]));
  }
}

TEST(HighlightTest, EmptyRulesNoHighlights) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  RuleSet empty;
  EXPECT_TRUE(HighlightRules(st->preprocessed().binned(), empty, view).empty());
}

TEST(HighlightTest, RenderContainsLegendAndAnsi) {
  GeneratedDataset data = SmallFlights();
  SubTabConfig config = TestConfig();
  config.l = 8;
  Result<SubTab> st = SubTab::Fit(data.table, config);
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.05;
  mining.min_confidence = 0.5;
  RuleSet rules = MineRules(st->preprocessed().binned(), mining);
  std::vector<RowHighlight> highlights =
      HighlightRules(st->preprocessed().binned(), rules, view);
  const std::string render = RenderHighlighted(view, highlights);
  EXPECT_FALSE(render.empty());
  if (!highlights.empty()) {
    EXPECT_NE(render.find("\x1b["), std::string::npos);
    EXPECT_NE(render.find("Highlighted rules"), std::string::npos);
  }
}

}  // namespace
}  // namespace subtab
