// Tests for the SubTab core: config validation, pre-processing, centroid
// selection (Algorithm 2), the facade, fingerprint stability (static and
// versioned), and rule highlighting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subtab/core/fingerprint.h"
#include "subtab/core/highlight.h"
#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/rules/miner.h"
#include "subtab/util/hash.h"

namespace subtab {
namespace {

/// Small fast config for tests.
SubTabConfig TestConfig() {
  SubTabConfig config;
  config.k = 5;
  config.l = 4;
  config.embedding.dim = 16;
  config.embedding.epochs = 2;
  config.seed = 77;
  return config;
}

GeneratedDataset SmallFlights() { return MakeFlights(800, 5); }

// ----------------------------------------------------------- Fingerprints --

/// The canonical table of the golden-fingerprint tests below.
Table GoldenTable() {
  Result<Table> table = Table::Make({
      Column::Numeric("speed", {1.5, 0.0, -3.25, 7.0}),
      Column::Categorical("city", {"ams", "tlv", "", "ams"}),
  });
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

// Fingerprints name on-disk model artifacts and registry entries shared
// across processes, so "stable" means the exact value, not just
// run-to-run equality within one process. These constants pin the hash
// functions; a mismatch means persisted models silently stopped being
// addressable — bump the format tag (subtab.table.v1, ...) if a change is
// ever intentional.
TEST(FingerprintTest, GoldenValuesStableAcrossProcessRuns) {
  EXPECT_EQ(TableFingerprint(GoldenTable()), 0x28f32af864281504ULL);
  EXPECT_EQ(ConfigFingerprint(SubTabConfig{}), 0x9d761c2f12f6d9d1ULL);
  EXPECT_EQ(TableSliceFingerprint(GoldenTable(), 1, 3), 0x6bd54267792b5c2aULL);
  EXPECT_EQ(ChainFingerprint(TableFingerprint(GoldenTable()),
                             TableSliceFingerprint(GoldenTable(), 1, 3), 1),
            0xc0f3504f0554a118ULL);
}

TEST(FingerprintTest, SensitiveToColumnReorder) {
  // Same content, columns swapped: a model fitted on one must not be
  // rebound to the other (selection column ids would silently shift).
  Result<Table> ab = Table::Make({Column::Numeric("a", {1.0, 2.0}),
                                  Column::Numeric("b", {3.0, 4.0})});
  Result<Table> ba = Table::Make({Column::Numeric("b", {3.0, 4.0}),
                                  Column::Numeric("a", {1.0, 2.0})});
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_NE(TableFingerprint(*ab), TableFingerprint(*ba));
  EXPECT_NE(TableSliceFingerprint(*ab, 0, 2), TableSliceFingerprint(*ba, 0, 2));
}

TEST(FingerprintTest, SliceFingerprintDependsOnRowsAndValuesOnly) {
  const Table table = GoldenTable();
  EXPECT_EQ(TableSliceFingerprint(table, 0, table.num_rows()),
            TableSliceFingerprint(GoldenTable(), 0, table.num_rows()));
  EXPECT_NE(TableSliceFingerprint(table, 0, 2), TableSliceFingerprint(table, 2, 4));
  // The full-table slice hash is value-based, intentionally distinct from
  // the dictionary-code-based TableFingerprint.
  EXPECT_NE(TableSliceFingerprint(table, 0, table.num_rows()),
            TableFingerprint(table));
}

TEST(FingerprintTest, ChainedFingerprintsAreOrderSensitive) {
  const uint64_t base = TableFingerprint(GoldenTable());
  const uint64_t d1 = 0x1111, d2 = 0x2222;
  const uint64_t ab = ChainFingerprint(ChainFingerprint(base, d1, 1), d2, 2);
  const uint64_t ba = ChainFingerprint(ChainFingerprint(base, d2, 1), d1, 2);
  EXPECT_NE(ab, ba);
  EXPECT_NE(ChainFingerprint(base, d1, 1), ChainFingerprint(base, d1, 2));
}

TEST(FingerprintTest, VersionedModelKeyDigests) {
  const ModelKey v0{0xabc, 0xdef, 0};
  // Version 0 must keep the pre-streaming digest: persisted artifacts from
  // older sessions stay addressable by file name.
  EXPECT_EQ(v0.Digest(), HashCombine(0xabc, 0xdef));
  const ModelKey v1{0xabc, 0xdef, 1};
  const ModelKey v2{0xabc, 0xdef, 2};
  EXPECT_NE(v1.Digest(), v0.Digest());
  EXPECT_NE(v1.Digest(), v2.Digest());
  EXPECT_FALSE(v0 == v1);
  EXPECT_TRUE((v0 == ModelKey{0xabc, 0xdef, 0}));
}

// ----------------------------------------------------------------- Config --

TEST(ConfigTest, DefaultsValidate) {
  SubTabConfig config;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.k, 10u);
  EXPECT_EQ(config.l, 10u);
  EXPECT_DOUBLE_EQ(config.alpha, 0.5);
  EXPECT_EQ(config.binning.num_bins, 5u);            // Paper default.
  EXPECT_EQ(config.corpus.max_sentences, 100000u);   // Paper's 100K cap.
}

TEST(ConfigTest, RejectsBadValues) {
  SubTabConfig config;
  config.k = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = SubTabConfig{};
  config.alpha = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config = SubTabConfig{};
  config.l = 2;
  config.target_columns = {"a", "b", "c"};
  EXPECT_FALSE(config.Validate().ok());
  config = SubTabConfig{};
  config.embedding.dim = 0;
  EXPECT_FALSE(config.Validate().ok());
}

// ------------------------------------------------------------- Preprocess --

TEST(PreprocessTest, ProducesModelOverAllTokens) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  EXPECT_EQ(pre.binned().num_rows(), data.table.num_rows());
  EXPECT_EQ(pre.binned().num_columns(), data.table.num_columns());
  EXPECT_EQ(pre.cell_model().word2vec().vocab_size(), pre.binned().total_bins());
  EXPECT_GT(pre.timings().total_seconds, 0.0);
  EXPECT_GE(pre.timings().training_seconds, 0.0);
}

TEST(PreprocessTest, MoveKeepsCellModelValid) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  PreprocessedTable moved = std::move(pre);
  // The cell model's internal pointer must survive the move.
  EXPECT_EQ(&moved.cell_model().binned(), &moved.binned());
  const auto v = moved.cell_model().CellVector(0, 0);
  EXPECT_EQ(v.size(), moved.cell_model().dim());
}

// -------------------------------------------------------------- Selection --

TEST(SelectTest, ReturnsRequestedShape) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  Selection sel = SelectSubTable(pre, 5, 4, scope, 1);
  EXPECT_EQ(sel.row_ids.size(), 5u);
  EXPECT_EQ(sel.col_ids.size(), 4u);
  // Distinct, in-range, sorted ids.
  std::set<size_t> rows(sel.row_ids.begin(), sel.row_ids.end());
  EXPECT_EQ(rows.size(), 5u);
  for (size_t r : sel.row_ids) EXPECT_LT(r, data.table.num_rows());
  EXPECT_TRUE(std::is_sorted(sel.col_ids.begin(), sel.col_ids.end()));
}

TEST(SelectTest, TargetColumnsAlwaysIncluded) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  const size_t cancelled = data.ColumnIndex("CANCELLED");
  SelectionScope scope;
  scope.target_cols = {cancelled};
  Selection sel = SelectSubTable(pre, 5, 4, scope, 2);
  EXPECT_NE(std::find(sel.col_ids.begin(), sel.col_ids.end(), cancelled),
            sel.col_ids.end());
  EXPECT_EQ(sel.col_ids.size(), 4u);
}

TEST(SelectTest, SmallScopeReturnsEverything) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  scope.rows = {3, 9, 11};
  scope.cols = {0, 5};
  Selection sel = SelectSubTable(pre, 10, 10, scope, 3);
  EXPECT_EQ(sel.row_ids, scope.rows);
  EXPECT_EQ(sel.col_ids, scope.cols);
}

TEST(SelectTest, ScopedSelectionStaysInScope) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  for (size_t r = 100; r < 400; ++r) scope.rows.push_back(r);
  for (size_t c = 2; c < 20; ++c) scope.cols.push_back(c);
  Selection sel = SelectSubTable(pre, 6, 5, scope, 4);
  EXPECT_EQ(sel.row_ids.size(), 6u);
  EXPECT_EQ(sel.col_ids.size(), 5u);
  for (size_t r : sel.row_ids) {
    EXPECT_GE(r, 100u);
    EXPECT_LT(r, 400u);
  }
  for (size_t c : sel.col_ids) {
    EXPECT_GE(c, 2u);
    EXPECT_LT(c, 20u);
  }
}

TEST(SelectTest, DeterministicForSeed) {
  GeneratedDataset data = SmallFlights();
  PreprocessedTable pre = Preprocess(data.table, TestConfig());
  SelectionScope scope;
  Selection a = SelectSubTable(pre, 5, 4, scope, 9);
  Selection b = SelectSubTable(pre, 5, 4, scope, 9);
  EXPECT_EQ(a.row_ids, b.row_ids);
  EXPECT_EQ(a.col_ids, b.col_ids);
}

// ----------------------------------------------------------------- Facade --

TEST(SubTabTest, FitRejectsBadInput) {
  SubTabConfig config = TestConfig();
  EXPECT_FALSE(SubTab::Fit(Table{}, config).ok());
  GeneratedDataset data = SmallFlights();
  config.target_columns = {"NO_SUCH_COLUMN"};
  EXPECT_FALSE(SubTab::Fit(data.table, config).ok());
}

TEST(SubTabTest, SelectProducesViewWithMaterializedTable) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.table.num_rows(), 5u);
  EXPECT_EQ(view.table.num_columns(), 4u);
  EXPECT_EQ(view.row_ids.size(), 5u);
  EXPECT_EQ(view.col_ids.size(), 4u);
  // The materialized cells match the source table.
  for (size_t r = 0; r < view.row_ids.size(); ++r) {
    for (size_t c = 0; c < view.col_ids.size(); ++c) {
      EXPECT_EQ(view.table.column(c).ToDisplay(r),
                data.table.column(view.col_ids[c]).ToDisplay(view.row_ids[r]));
    }
  }
}

TEST(SubTabTest, DimensionOverrides) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select(3, 6);
  EXPECT_EQ(view.table.num_rows(), 3u);
  EXPECT_EQ(view.table.num_columns(), 6u);
}

TEST(SubTabTest, TargetColumnResolvedAndIncluded) {
  GeneratedDataset data = SmallFlights();
  SubTabConfig config = TestConfig();
  config.target_columns = {"CANCELLED"};
  Result<SubTab> st = SubTab::Fit(data.table, config);
  ASSERT_TRUE(st.ok());
  const size_t cancelled = data.ColumnIndex("CANCELLED");
  EXPECT_EQ(st->target_column_ids(), (std::vector<size_t>{cancelled}));
  SubTabView view = st->Select();
  EXPECT_NE(std::find(view.col_ids.begin(), view.col_ids.end(), cancelled),
            view.col_ids.end());
}

TEST(SubTabTest, SelectForQueryRestrictsToResult) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SpQuery q;
  q.filters = {Predicate::Str("CANCELLED", CmpOp::kEq, "1")};
  Result<SubTabView> view = st->SelectForQuery(q);
  ASSERT_TRUE(view.ok());
  // All selected rows must satisfy the query.
  const Column& cancelled = data.table.column("CANCELLED");
  for (size_t r : view->row_ids) {
    ASSERT_FALSE(cancelled.is_null(r));
    EXPECT_EQ(cancelled.cat_value(r), "1");
  }
}

TEST(SubTabTest, SelectForQueryWithProjection) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SpQuery q;
  q.projection = {"AIRLINE", "DISTANCE", "AIR_TIME", "CANCELLED", "DEPARTURE_DELAY"};
  Result<SubTabView> view = st->SelectForQuery(q, 4, 3);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->col_ids.size(), 3u);
  for (size_t c : view->col_ids) {
    const std::string& name = data.table.column(c).name();
    EXPECT_TRUE(std::find(q.projection.begin(), q.projection.end(), name) !=
                q.projection.end());
  }
}

TEST(SubTabTest, EmptyQueryResultErrors) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SpQuery q;
  q.filters = {Predicate::Str("AIRLINE", CmpOp::kEq, "NO_SUCH_AIRLINE")};
  EXPECT_FALSE(st->SelectForQuery(q).ok());
}

TEST(SubTabTest, QuerySelectionIsFasterThanPreprocessing) {
  // The architectural claim of Fig. 1/9: per-query selection reuses the
  // embedding and costs far less than pre-processing.
  GeneratedDataset data = MakeFlights(3000, 6);
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_LT(view.selection_seconds, st->preprocessed().timings().total_seconds);
}

// -------------------------------------------------------------- Highlight --

TEST(HighlightTest, AtMostOneRulePerRowAndValidCells) {
  GeneratedDataset data = SmallFlights();
  SubTabConfig config = TestConfig();
  config.l = 8;
  Result<SubTab> st = SubTab::Fit(data.table, config);
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();

  RuleMiningOptions mining;
  mining.apriori.min_support = 0.05;
  mining.min_confidence = 0.5;
  RuleSet rules = MineRules(st->preprocessed().binned(), mining);
  std::vector<RowHighlight> highlights =
      HighlightRules(st->preprocessed().binned(), rules, view);

  std::set<size_t> rows_seen;
  for (const RowHighlight& h : highlights) {
    EXPECT_TRUE(rows_seen.insert(h.view_row).second);  // One rule per row.
    EXPECT_LT(h.view_row, view.row_ids.size());
    EXPECT_LT(h.rule_index, rules.size());
    EXPECT_FALSE(h.view_cols.empty());
    for (size_t c : h.view_cols) EXPECT_LT(c, view.col_ids.size());
    // The rule actually holds for the source row.
    EXPECT_TRUE(rules.rules[h.rule_index].HoldsForRow(st->preprocessed().binned(),
                                                      view.row_ids[h.view_row]));
  }
}

TEST(HighlightTest, EmptyRulesNoHighlights) {
  GeneratedDataset data = SmallFlights();
  Result<SubTab> st = SubTab::Fit(data.table, TestConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  RuleSet empty;
  EXPECT_TRUE(HighlightRules(st->preprocessed().binned(), empty, view).empty());
}

TEST(HighlightTest, RenderContainsLegendAndAnsi) {
  GeneratedDataset data = SmallFlights();
  SubTabConfig config = TestConfig();
  config.l = 8;
  Result<SubTab> st = SubTab::Fit(data.table, config);
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.05;
  mining.min_confidence = 0.5;
  RuleSet rules = MineRules(st->preprocessed().binned(), mining);
  std::vector<RowHighlight> highlights =
      HighlightRules(st->preprocessed().binned(), rules, view);
  const std::string render = RenderHighlighted(view, highlights);
  EXPECT_FALSE(render.empty());
  if (!highlights.empty()) {
    EXPECT_NE(render.find("\x1b["), std::string::npos);
    EXPECT_NE(render.find("Highlighted rules"), std::string::npos);
  }
}

}  // namespace
}  // namespace subtab
