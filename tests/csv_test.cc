// Unit tests for CSV parsing, type inference, and round-tripping.

#include <gtest/gtest.h>

#include <sstream>

#include "subtab/table/csv.h"
#include "subtab/util/rng.h"
#include "subtab/util/string_util.h"

namespace subtab {
namespace {

Result<Table> Parse(const std::string& text, CsvOptions options = {}) {
  std::istringstream in(text);
  return ReadCsv(in, options);
}

TEST(CsvRecordTest, SimpleFields) {
  std::vector<std::string> f;
  ASSERT_TRUE(ParseCsvRecord("a,b,c", ',', &f));
  EXPECT_EQ(f, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvRecordTest, EmptyFields) {
  std::vector<std::string> f;
  ASSERT_TRUE(ParseCsvRecord(",x,", ',', &f));
  EXPECT_EQ(f, (std::vector<std::string>{"", "x", ""}));
}

TEST(CsvRecordTest, QuotedFieldWithDelimiter) {
  std::vector<std::string> f;
  ASSERT_TRUE(ParseCsvRecord("\"a,b\",c", ',', &f));
  EXPECT_EQ(f, (std::vector<std::string>{"a,b", "c"}));
}

TEST(CsvRecordTest, DoubledQuoteEscape) {
  std::vector<std::string> f;
  ASSERT_TRUE(ParseCsvRecord("\"he said \"\"hi\"\"\",x", ',', &f));
  EXPECT_EQ(f[0], "he said \"hi\"");
}

TEST(CsvRecordTest, UnterminatedQuoteFails) {
  std::vector<std::string> f;
  EXPECT_FALSE(ParseCsvRecord("\"oops,x", ',', &f));
}

TEST(CsvRecordTest, TrailingCarriageReturnDropped) {
  std::vector<std::string> f;
  ASSERT_TRUE(ParseCsvRecord("a,b\r", ',', &f));
  EXPECT_EQ(f, (std::vector<std::string>{"a", "b"}));
}

TEST(CsvRecordTest, AlternateDelimiter) {
  std::vector<std::string> f;
  ASSERT_TRUE(ParseCsvRecord("a;b", ';', &f));
  EXPECT_EQ(f, (std::vector<std::string>{"a", "b"}));
}

TEST(CsvReadTest, InfersNumericAndCategorical) {
  Result<Table> t = Parse("n,c\n1,x\n2.5,y\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column("n").type(), ColumnType::kNumeric);
  EXPECT_EQ(t->column("c").type(), ColumnType::kCategorical);
  EXPECT_DOUBLE_EQ(t->column("n").num_value(1), 2.5);
  EXPECT_EQ(t->column("c").cat_value(0), "x");
}

TEST(CsvReadTest, MixedColumnBecomesCategorical) {
  Result<Table> t = Parse("m\n1\nabc\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column("m").type(), ColumnType::kCategorical);
}

TEST(CsvReadTest, NaSpellingsBecomeNull) {
  Result<Table> t = Parse("n,c\nNaN,null\n3,ok\n,NA\n");
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->column("n").is_null(0));
  EXPECT_TRUE(t->column("c").is_null(0));
  EXPECT_TRUE(t->column("n").is_null(2));
  EXPECT_TRUE(t->column("c").is_null(2));
  EXPECT_DOUBLE_EQ(t->column("n").num_value(1), 3.0);
}

TEST(CsvReadTest, AllNullColumnIsCategorical) {
  Result<Table> t = Parse("a,b\n1,\n2,\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column("b").type(), ColumnType::kCategorical);
  EXPECT_EQ(t->column("b").null_count(), 2u);
}

TEST(CsvReadTest, HeaderlessSynthesizesNames) {
  CsvOptions opt;
  opt.has_header = false;
  Result<Table> t = Parse("1,2\n3,4\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).name(), "col_0");
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvReadTest, FieldCountMismatchErrors) {
  Result<Table> t = Parse("a,b\n1\n");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvReadTest, EmptyInputErrors) {
  Result<Table> t = Parse("");
  EXPECT_FALSE(t.ok());
}

TEST(CsvReadTest, MaxRowsLimits) {
  CsvOptions opt;
  opt.max_rows = 2;
  Result<Table> t = Parse("a\n1\n2\n3\n4\n", opt);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->num_rows(), 2u);
}

TEST(CsvReadTest, MissingFileErrors) {
  Result<Table> t = ReadCsvFile("/nonexistent/definitely_missing.csv");
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kNotFound);
}

TEST(CsvWriteTest, RoundTripPreservesValuesAndNulls) {
  Result<Table> orig = Parse("n,c\n1.5,hello\n,world\n2,\n");
  ASSERT_TRUE(orig.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*orig, out).ok());
  Result<Table> back = Parse(out.str());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(back->column("n").num_value(0), 1.5);
  EXPECT_TRUE(back->column("n").is_null(1));
  EXPECT_EQ(back->column("c").cat_value(1), "world");
  EXPECT_TRUE(back->column("c").is_null(2));
}

TEST(CsvWriteTest, QuotesFieldsWithDelimiters) {
  Column c = Column::Categorical("c", {"a,b", "q\"t"});
  Result<Table> t = Table::Make({std::move(c)});
  ASSERT_TRUE(t.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*t, out).ok());
  EXPECT_NE(out.str().find("\"a,b\""), std::string::npos);
  EXPECT_NE(out.str().find("\"q\"\"t\""), std::string::npos);
}

TEST(CsvWriteTest, FileRoundTrip) {
  Result<Table> t = Parse("x\n1\n2\n");
  ASSERT_TRUE(t.ok());
  const std::string path = ::testing::TempDir() + "/subtab_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(*t, path).ok());
  Result<Table> back = ReadCsvFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
}



TEST(CsvReadTest, QuotedFieldSpansLines) {
  // RFC 4180: an embedded newline inside a quoted field continues the record.
  Result<Table> t = Parse("c,n\n\"line one\nline two\",5\nplain,6\n");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  ASSERT_EQ(t->num_rows(), 2u);
  EXPECT_EQ(t->column("c").cat_value(0), "line one\nline two");
  EXPECT_DOUBLE_EQ(t->column("n").num_value(1), 6.0);
}

TEST(CsvReadTest, UnterminatedQuoteAtEofErrors) {
  Result<Table> t = Parse("c\n\"never closed\n");
  ASSERT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("unterminated"), std::string::npos);
}

TEST(CsvFuzzTest, RandomBytesNeverCrashTheParser) {
  // Property: arbitrary byte soup either parses or returns a clean error —
  // never crashes, never loops.
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    std::string blob;
    const size_t len = rng.Uniform(300);
    for (size_t i = 0; i < len; ++i) {
      // Bias toward CSV-relevant characters.
      const char alphabet[] = "abc123,\"\n\r;. \t";
      blob += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
    }
    Result<Table> t = Parse(blob);
    if (t.ok()) {
      EXPECT_GE(t->num_columns(), 1u);
    } else {
      EXPECT_FALSE(t.status().message().empty());
    }
  }
}

TEST(CsvFuzzTest, RandomRecordsRoundTrip) {
  // Any table we can build must serialize and re-parse to identical shape.
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const size_t n = 1 + rng.Uniform(20);
    std::vector<std::string> values;
    for (size_t i = 0; i < n; ++i) {
      std::string v;
      const size_t len = rng.Uniform(12);
      for (size_t j = 0; j < len; ++j) {
        const char alphabet[] = "xy,\"\n z";
        v += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
      }
      // Whitespace-only cells read back as NA by design; keep them non-blank.
      if (StrTrim(v).empty()) v = "x";
      values.push_back(v);
    }
    Column col = Column::Categorical("c", values);
    const size_t original_nulls = col.null_count();
    Result<Table> t = Table::Make({std::move(col)});
    ASSERT_TRUE(t.ok());
    std::ostringstream out;
    ASSERT_TRUE(WriteCsv(*t, out).ok());
    Result<Table> back = Parse(out.str());
    ASSERT_TRUE(back.ok()) << out.str();
    EXPECT_EQ(back->num_rows(), n);
    EXPECT_EQ(back->column(0).null_count(), original_nulls);
  }
}

}  // namespace
}  // namespace subtab
