// Tests for the synthetic dataset generators: planted patterns must be
// realized with the requested support/confidence, NaN co-patterns must
// hold, and the six dataset emulators must match the paper's shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "subtab/data/datasets.h"
#include "subtab/data/generator.h"

namespace subtab {
namespace {

/// Measures the realized support/confidence of a planted pattern using the
/// generator's group semantics: a numeric cell belongs to group g if it is
/// nearest to that group's center; categorical cells match exactly.
struct PatternStats {
  double support = 0.0;
  double confidence = 0.0;
};

size_t GroupOfCell(const ColumnSpec& spec, const Column& col, size_t row) {
  if (col.is_null(row)) return static_cast<size_t>(-1);
  if (spec.type == ColumnType::kNumeric) {
    const double v = col.num_value(row);
    size_t best = 0;
    double best_d = std::abs(v - spec.group_centers[0]);
    for (size_t g = 1; g < spec.group_centers.size(); ++g) {
      const double d = std::abs(v - spec.group_centers[g]);
      if (d < best_d) {
        best_d = d;
        best = g;
      }
    }
    return best;
  }
  const std::string value(col.cat_value(row));
  for (size_t g = 0; g < spec.categories.size(); ++g) {
    if (spec.categories[g] == value) return g;
  }
  return static_cast<size_t>(-1);
}

PatternStats MeasurePattern(const GeneratedDataset& data, const PlantedPattern& p) {
  const Table& t = data.table;
  size_t lhs_count = 0;
  size_t joint = 0;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    bool lhs_holds = true;
    for (const auto& [name, group] : p.lhs) {
      const size_t c = data.ColumnIndex(name);
      const ColumnSpec& spec = data.spec.columns[c];
      if (GroupOfCell(spec, t.column(c), r) != group) {
        lhs_holds = false;
        break;
      }
    }
    if (!lhs_holds) continue;
    ++lhs_count;
    const size_t rc = data.ColumnIndex(p.rhs.first);
    if (GroupOfCell(data.spec.columns[rc], t.column(rc), r) == p.rhs.second) ++joint;
  }
  PatternStats stats;
  stats.support = static_cast<double>(joint) / static_cast<double>(t.num_rows());
  stats.confidence =
      lhs_count == 0 ? 0.0 : static_cast<double>(joint) / static_cast<double>(lhs_count);
  return stats;
}

TEST(GeneratorTest, ShapeMatchesSpec) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.num_rows = 500;
  spec.columns = {ColumnSpec::Numeric("x", {0, 100}, 1.0),
                  ColumnSpec::Categorical("c", {"a", "b", "c"})};
  GeneratedDataset data = GenerateDataset(spec);
  EXPECT_EQ(data.table.num_rows(), 500u);
  EXPECT_EQ(data.table.num_columns(), 2u);
  EXPECT_EQ(data.table.column(0).type(), ColumnType::kNumeric);
  EXPECT_EQ(data.table.column(1).type(), ColumnType::kCategorical);
}

TEST(GeneratorTest, DeterministicForSeed) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.num_rows = 100;
  spec.seed = 9;
  spec.columns = {ColumnSpec::Numeric("x", {0, 50}, 1.0)};
  GeneratedDataset a = GenerateDataset(spec);
  GeneratedDataset b = GenerateDataset(spec);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a.table.column(0).ToDisplay(r), b.table.column(0).ToDisplay(r));
  }
}

TEST(GeneratorTest, PlantedPatternRealizesSupportAndConfidence) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.num_rows = 4000;
  spec.seed = 3;
  spec.columns = {ColumnSpec::Numeric("x", {0, 100}, 1.0),
                  ColumnSpec::Numeric("y", {0, 100}, 1.0),
                  ColumnSpec::Categorical("z", {"n", "p"})};
  spec.patterns = {{{{"x", 1}, {"y", 1}}, {"z", 1}, 0.2, 0.9, "planted"}};
  GeneratedDataset data = GenerateDataset(spec);
  const PatternStats stats = MeasurePattern(data, data.spec.patterns[0]);
  // Background rows can also satisfy the pattern, so realized support is at
  // least the planted region x confidence.
  EXPECT_GE(stats.support, 0.2 * 0.9 - 0.02);
  EXPECT_GE(stats.confidence, 0.6);
}

TEST(GeneratorTest, BackgroundNanFractionApproximatelyRespected) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.num_rows = 5000;
  spec.columns = {ColumnSpec::Numeric("x", {0, 10}, 1.0, 0.3)};
  GeneratedDataset data = GenerateDataset(spec);
  const double null_rate =
      static_cast<double>(data.table.column(0).null_count()) / 5000.0;
  EXPECT_NEAR(null_rate, 0.3, 0.03);
}

TEST(GeneratorTest, NanPatternBlanksTriggeredRows) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.num_rows = 2000;
  spec.columns = {ColumnSpec::Categorical("flag", {"no", "yes"}),
                  ColumnSpec::Numeric("v", {0, 10}, 1.0)};
  spec.nan_patterns = {{"flag", 1, {"v"}}};
  GeneratedDataset data = GenerateDataset(spec);
  const Column& flag = data.table.column(0);
  const Column& v = data.table.column(1);
  size_t yes_rows = 0;
  for (size_t r = 0; r < 2000; ++r) {
    if (!flag.is_null(r) && flag.cat_value(r) == "yes") {
      ++yes_rows;
      EXPECT_TRUE(v.is_null(r));
    }
  }
  EXPECT_GT(yes_rows, 0u);
}

// ----------------------------------------------------- Dataset emulators --

TEST(DatasetsTest, ShapesMatchPaper) {
  EXPECT_EQ(MakeFlights(500).table.num_columns(), 31u);
  EXPECT_EQ(MakeCyber(500).table.num_columns(), 15u);
  EXPECT_EQ(MakeSpotify(500).table.num_columns(), 15u);
  EXPECT_EQ(MakeCreditCard(500).table.num_columns(), 31u);
  EXPECT_EQ(MakeUsFunds(500).table.num_columns(), 60u);
  EXPECT_EQ(MakeBankLoans(500).table.num_columns(), 19u);
}

TEST(DatasetsTest, RowCountScales) {
  EXPECT_EQ(MakeFlights(1234).table.num_rows(), 1234u);
  EXPECT_EQ(MakeCyber(77).table.num_rows(), 77u);
}

TEST(DatasetsTest, CreditCardIsAllNumeric) {
  // The paper singles out CC as all-numeric (binning dominates, Fig. 9).
  GeneratedDataset cc = MakeCreditCard(200);
  for (size_t c = 0; c < cc.table.num_columns(); ++c) {
    EXPECT_TRUE(cc.table.column(c).is_numeric()) << cc.table.column(c).name();
  }
}

TEST(DatasetsTest, FlightsCancelledRowsHaveNaNOperationalColumns) {
  GeneratedDataset fl = MakeFlights(3000);
  const Column& cancelled = fl.table.column("CANCELLED");
  const Column& air_time = fl.table.column("AIR_TIME");
  const Column& dep_delay = fl.table.column("DEPARTURE_DELAY");
  size_t cancelled_rows = 0;
  for (size_t r = 0; r < fl.table.num_rows(); ++r) {
    if (!cancelled.is_null(r) && cancelled.cat_value(r) == "1") {
      ++cancelled_rows;
      EXPECT_TRUE(air_time.is_null(r));
      EXPECT_TRUE(dep_delay.is_null(r));
    }
  }
  EXPECT_GT(cancelled_rows, 100u);  // Cancellations actually occur.
}

TEST(DatasetsTest, EveryDatasetPlantsMinablePatterns) {
  for (const GeneratedDataset& data :
       {MakeFlights(4000), MakeCyber(4000), MakeSpotify(4000), MakeCreditCard(4000),
        MakeUsFunds(2000), MakeBankLoans(4000)}) {
    ASSERT_FALSE(data.spec.patterns.empty()) << data.spec.name;
    for (const PlantedPattern& p : data.spec.patterns) {
      const PatternStats stats = MeasurePattern(data, p);
      // NaN co-patterns can suppress part of a planted region (e.g. FL's
      // cancelled rows blank AIR_TIME), so require half the nominal support.
      EXPECT_GE(stats.support, p.support * p.confidence * 0.5 - 0.01)
          << data.spec.name << ": " << p.description;
      EXPECT_GE(stats.confidence, 0.45) << data.spec.name << ": " << p.description;
    }
  }
}

TEST(DatasetsTest, TargetColumnsExist) {
  EXPECT_TRUE(MakeFlights(100).table.schema().IndexOf("CANCELLED").has_value());
  EXPECT_TRUE(MakeSpotify(100).table.schema().IndexOf("popularity").has_value());
  EXPECT_TRUE(MakeBankLoans(100).table.schema().IndexOf("loan_status").has_value());
  EXPECT_EQ(DatasetTargetColumn("FL"), "CANCELLED");
  EXPECT_EQ(DatasetTargetColumn("SP"), "popularity");
  EXPECT_EQ(DatasetTargetColumn("unknown"), "");
}

TEST(DatasetsTest, PatternColumnsResolve) {
  for (const GeneratedDataset& data : {MakeFlights(100), MakeCyber(100),
                                       MakeSpotify(100), MakeCreditCard(100),
                                       MakeUsFunds(100), MakeBankLoans(100)}) {
    for (const PlantedPattern& p : data.spec.patterns) {
      for (const auto& [name, group] : p.lhs) {
        const size_t c = data.ColumnIndex(name);
        EXPECT_LT(group, data.spec.columns[c].num_groups());
      }
      const size_t rc = data.ColumnIndex(p.rhs.first);
      EXPECT_LT(p.rhs.second, data.spec.columns[rc].num_groups());
    }
  }
}

}  // namespace
}  // namespace subtab
