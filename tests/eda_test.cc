// Tests for the EDA substrate: fragment capture, session generation, replay
// scoring (Fig. 6 machinery), and the simulated analyst (Table 1 machinery).

#include <gtest/gtest.h>

#include <algorithm>

#include "subtab/data/datasets.h"
#include "subtab/eda/analyst.h"
#include "subtab/eda/replay.h"
#include "subtab/eda/session_generator.h"

namespace subtab {
namespace {

Table TwoColumnTable() {
  Column num = Column::Numeric("num", {1, 2, 3, 100, 101, 102});
  Column cat = Column::Categorical("cat", {"a", "a", "a", "b", "b", "b"});
  Result<Table> t = Table::Make({std::move(num), std::move(cat)});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

// ------------------------------------------------------- FragmentCaptured --

TEST(FragmentTest, ColumnOnlyFragment) {
  Table t = TwoColumnTable();
  BinningOptions options;
  options.strategy = BinningStrategy::kEqualWidth;
  options.num_bins = 2;
  BinnedTable binned = BinnedTable::Compute(t, options);
  Fragment f;
  f.column = "cat";
  EXPECT_TRUE(FragmentCaptured(f, binned, {0}, {0, 1}));
  EXPECT_FALSE(FragmentCaptured(f, binned, {0}, {0}));  // Column not shown.
}

TEST(FragmentTest, NumericValueMatchesByBin) {
  Table t = TwoColumnTable();
  BinningOptions options;
  options.strategy = BinningStrategy::kEqualWidth;
  options.num_bins = 2;
  BinnedTable binned = BinnedTable::Compute(t, options);
  Fragment f;
  f.column = "num";
  f.has_value = true;
  f.value_is_numeric = true;
  f.num_value = 2.5;  // Low bin.
  // Row 0 (value 1) is in the low bin -> captured.
  EXPECT_TRUE(FragmentCaptured(f, binned, {0}, {0, 1}));
  // Row 3 (value 100) is in the high bin -> not captured.
  EXPECT_FALSE(FragmentCaptured(f, binned, {3}, {0, 1}));
}

TEST(FragmentTest, CategoricalValueMatch) {
  Table t = TwoColumnTable();
  BinnedTable binned = BinnedTable::Compute(t);
  Fragment f;
  f.column = "cat";
  f.has_value = true;
  f.value_is_numeric = false;
  f.str_value = "b";
  EXPECT_TRUE(FragmentCaptured(f, binned, {4}, {1}));
  EXPECT_FALSE(FragmentCaptured(f, binned, {0, 1}, {1}));
}

TEST(FragmentTest, TailCategoryMapsToOtherBin) {
  std::vector<std::string> values;
  for (int i = 0; i < 20; ++i) values.push_back("common");
  values.push_back("rare1");
  values.push_back("rare2");
  values.push_back("rare3");
  values.push_back("rare4");
  values.push_back("rare5");
  Column cat = Column::Categorical("c", values);
  Result<Table> t = Table::Make({std::move(cat)});
  ASSERT_TRUE(t.ok());
  BinningOptions options;
  options.max_cat_bins = 2;  // common + other.
  BinnedTable binned = BinnedTable::Compute(*t, options);
  Fragment f;
  f.column = "c";
  f.has_value = true;
  f.value_is_numeric = false;
  f.str_value = "rare1";
  // A displayed row holding rare3 (same "other" bin) captures the fragment.
  EXPECT_TRUE(FragmentCaptured(f, binned, {22}, {0}));
  EXPECT_FALSE(FragmentCaptured(f, binned, {0}, {0}));
}

// ------------------------------------------------------ Session generator --

TEST(SessionGeneratorTest, GeneratesRequestedSessions) {
  GeneratedDataset data = MakeCyber(2000, 3);
  SessionGeneratorOptions options;
  options.num_sessions = 25;
  options.seed = 4;
  std::vector<Session> sessions = GenerateSessions(data, options);
  EXPECT_GE(sessions.size(), 20u);  // A few may collapse below 2 steps.
  for (const Session& s : sessions) {
    EXPECT_GE(s.steps.size(), 2u);
    EXPECT_LE(s.steps.size(), options.max_steps);
  }
}

TEST(SessionGeneratorTest, QueriesAreValidAndNonEmpty) {
  GeneratedDataset data = MakeCyber(2000, 5);
  SessionGeneratorOptions options;
  options.num_sessions = 15;
  std::vector<Session> sessions = GenerateSessions(data, options);
  for (const Session& s : sessions) {
    for (const SessionStep& step : s.steps) {
      Result<QueryResult> r = RunQuery(data.table, step.query);
      ASSERT_TRUE(r.ok());
      EXPECT_GE(r->row_ids.size(), options.min_result_rows);
    }
  }
}

TEST(SessionGeneratorTest, FragmentsReferenceRealColumns) {
  GeneratedDataset data = MakeCyber(1500, 6);
  SessionGeneratorOptions options;
  options.num_sessions = 10;
  std::vector<Session> sessions = GenerateSessions(data, options);
  for (const Session& s : sessions) {
    for (const SessionStep& step : s.steps) {
      EXPECT_TRUE(data.table.schema().IndexOf(step.fragment.column).has_value());
    }
  }
}

TEST(SessionGeneratorTest, DeterministicForSeed) {
  GeneratedDataset data = MakeCyber(1000, 7);
  SessionGeneratorOptions options;
  options.num_sessions = 5;
  options.seed = 11;
  std::vector<Session> a = GenerateSessions(data, options);
  std::vector<Session> b = GenerateSessions(data, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].steps.size(), b[i].steps.size());
    for (size_t j = 0; j < a[i].steps.size(); ++j) {
      EXPECT_EQ(a[i].steps[j].query.ToString(), b[i].steps[j].query.ToString());
    }
  }
}

// ----------------------------------------------------------------- Replay --

TEST(ReplayTest, PerfectSelectorCapturesColumnFragments) {
  // A selector that shows *all* rows and columns captures every fragment.
  GeneratedDataset data = MakeCyber(1200, 8);
  BinnedTable binned = BinnedTable::Compute(data.table);
  SessionGeneratorOptions options;
  options.num_sessions = 8;
  std::vector<Session> sessions = GenerateSessions(data, options);

  SelectorFn show_all = [](const std::vector<size_t>& rows,
                           const std::vector<size_t>& cols, size_t, size_t) {
    return std::make_pair(rows, cols);
  };
  ReplayStats stats = ReplaySessions(data.table, binned, sessions, 10, 10, show_all);
  EXPECT_GT(stats.steps_scored, 0u);
  // Everything visible: value fragments drawn from visible rows must match.
  EXPECT_GT(stats.capture_rate, 0.6);
}

TEST(ReplayTest, EmptySelectorCapturesNothing) {
  GeneratedDataset data = MakeCyber(1000, 9);
  BinnedTable binned = BinnedTable::Compute(data.table);
  SessionGeneratorOptions options;
  options.num_sessions = 6;
  std::vector<Session> sessions = GenerateSessions(data, options);
  SelectorFn empty = [](const std::vector<size_t>&, const std::vector<size_t>&,
                        size_t, size_t) {
    return std::make_pair(std::vector<size_t>{}, std::vector<size_t>{});
  };
  ReplayStats stats = ReplaySessions(data.table, binned, sessions, 10, 10, empty);
  EXPECT_EQ(stats.fragments_captured, 0u);
  EXPECT_DOUBLE_EQ(stats.capture_rate, 0.0);
}

TEST(ReplayTest, WiderSubTablesCaptureMore) {
  // The monotone trend of Fig. 6: more columns -> higher capture.
  GeneratedDataset data = MakeCyber(1500, 10);
  BinnedTable binned = BinnedTable::Compute(data.table);
  SessionGeneratorOptions options;
  options.num_sessions = 20;
  std::vector<Session> sessions = GenerateSessions(data, options);

  Rng rng(13);
  auto random_selector = [&rng](const std::vector<size_t>& rows,
                                const std::vector<size_t>& cols, size_t k, size_t l) {
    std::vector<size_t> r;
    for (size_t pick :
         rng.SampleWithoutReplacement(rows.size(), std::min(k, rows.size()))) {
      r.push_back(rows[pick]);
    }
    std::vector<size_t> c;
    for (size_t pick :
         rng.SampleWithoutReplacement(cols.size(), std::min(l, cols.size()))) {
      c.push_back(cols[pick]);
    }
    return std::make_pair(r, c);
  };
  ReplayStats narrow = ReplaySessions(data.table, binned, sessions, 10, 3,
                                      random_selector);
  ReplayStats wide = ReplaySessions(data.table, binned, sessions, 10, 12,
                                    random_selector);
  EXPECT_GE(wide.capture_rate, narrow.capture_rate);
}

// ---------------------------------------------------------------- Analyst --

TEST(AnalystTest, FindsPlantedPatternAsCorrectInsight) {
  // Display rows that all exhibit a genuine planted co-occurrence: the
  // analyst must report it and the fact-check must confirm it.
  GeneratedDataset data = MakeFlights(4000, 11);
  BinnedTable binned = BinnedTable::Compute(data.table);
  // Rows where the FL pattern "long AIR_TIME & long DISTANCE" holds.
  const size_t air = data.ColumnIndex("AIR_TIME");
  const size_t dist = data.ColumnIndex("DISTANCE");
  const Column& air_col = data.table.column(air);
  std::vector<size_t> rows;
  for (size_t r = 0; r < data.table.num_rows() && rows.size() < 6; ++r) {
    if (!air_col.is_null(r) && air_col.num_value(r) > 280 &&
        data.table.column(dist).num_value(r) > 2000) {
      rows.push_back(r);
    }
  }
  ASSERT_GE(rows.size(), 3u);
  AnalystReport report =
      SimulateAnalyst(binned, rows, {air, dist, data.ColumnIndex("CANCELLED")},
                      AnalystOptions{});
  EXPECT_GT(report.num_total, 0u);
  EXPECT_GT(report.num_correct, 0u);
}

TEST(AnalystTest, SpuriousRepetitionIsIncorrect) {
  // Hand-build a table where "x=1 with y=1" is rare globally, then show the
  // analyst only the few coincidental rows: the insight must be rejected.
  Rng rng(15);
  std::vector<std::string> x;
  std::vector<std::string> y;
  const size_t n = 2000;
  for (size_t i = 0; i < n; ++i) {
    x.push_back(rng.Bernoulli(0.5) ? "1" : "0");
    y.push_back(rng.Bernoulli(0.03) ? "1" : "0");  // y=1 is rare everywhere.
  }
  // Force three coincidences.
  x[0] = x[1] = x[2] = "1";
  y[0] = y[1] = y[2] = "1";
  Result<Table> t =
      Table::Make({Column::Categorical("x", x), Column::Categorical("y", y)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  AnalystReport report = SimulateAnalyst(binned, {0, 1, 2}, {0, 1}, AnalystOptions{});
  ASSERT_GT(report.num_total, 0u);
  bool saw_incorrect = false;
  for (const Insight& insight : report.insights) {
    const std::string la = binned.TokenLabel(insight.a);
    const std::string lb = binned.TokenLabel(insight.b);
    if ((la == "x=1" && lb == "y=1") || (la == "y=1" && lb == "x=1")) {
      EXPECT_FALSE(insight.correct);
      saw_incorrect = true;
    }
  }
  EXPECT_TRUE(saw_incorrect);
}

TEST(AnalystTest, DiverseDisplayYieldsFewInsights) {
  // A display with no repeated co-occurrences produces no insights at all
  // (the "no insights" failure mode of Table 1).
  Column a = Column::Categorical("a", {"p", "q", "r"});
  Column b = Column::Categorical("b", {"x", "y", "z"});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  AnalystReport report = SimulateAnalyst(binned, {0, 1, 2}, {0, 1}, AnalystOptions{});
  EXPECT_EQ(report.num_total, 0u);
}

TEST(AnalystTest, RespectsMaxInsights) {
  // Ten identical rows create many repeated pairs; the report is capped.
  std::vector<std::string> same(10, "v");
  Result<Table> t = Table::Make({Column::Categorical("a", same),
                                 Column::Categorical("b", same),
                                 Column::Categorical("c", same),
                                 Column::Categorical("d", same)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  AnalystOptions options;
  options.max_insights = 3;
  AnalystReport report = SimulateAnalyst(
      binned, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0, 1, 2, 3}, options);
  EXPECT_LE(report.num_total, 3u);
}

}  // namespace
}  // namespace subtab
