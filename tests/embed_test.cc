// Tests for the embedding substrate: corpus construction, vocabulary /
// negative sampling, SGNS training behaviour, the cell model, and the EmbDI
// graph baseline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "subtab/embed/cell_model.h"
#include "subtab/embed/embdi.h"
#include "subtab/embed/vocab.h"
#include "subtab/embed/word2vec.h"

namespace subtab {
namespace {

/// Two strongly coupled columns (a<->x, b<->y) plus an independent one.
Table CoupledTable(size_t n) {
  std::vector<std::string> c1;
  std::vector<std::string> c2;
  std::vector<std::string> c3;
  Rng rng(11);
  for (size_t i = 0; i < n; ++i) {
    const bool flip = rng.Bernoulli(0.5);
    c1.push_back(flip ? "a" : "b");
    c2.push_back(flip ? "x" : "y");
    c3.push_back(rng.Bernoulli(0.5) ? "p" : "q");
  }
  Result<Table> t = Table::Make({Column::Categorical("c1", c1),
                                 Column::Categorical("c2", c2),
                                 Column::Categorical("c3", c3)});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

// ---------------------------------------------------------------- Corpus --

TEST(CorpusTest, RowAndColumnSentences) {
  Table t = CoupledTable(10);
  BinnedTable binned = BinnedTable::Compute(t);
  Rng rng(1);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  // 10 tuple-sentences of length 3 + 3 column-sentences of length 10.
  EXPECT_EQ(corpus.sentences().size(), 13u);
  EXPECT_EQ(corpus.total_words(), 10u * 3 + 3u * 10);
  EXPECT_EQ(corpus.vocab_size(), binned.total_bins());
  size_t len3 = 0;
  size_t len10 = 0;
  for (const auto& s : corpus.sentences()) {
    len3 += (s.size() == 3);
    len10 += (s.size() == 10);
  }
  EXPECT_EQ(len3, 10u);
  EXPECT_EQ(len10, 3u);
}

TEST(CorpusTest, CapSamplesUniformly) {
  Table t = CoupledTable(100);
  BinnedTable binned = BinnedTable::Compute(t);
  CorpusOptions options;
  options.max_sentences = 20;
  Rng rng(2);
  Corpus corpus = Corpus::Build(binned, options, &rng);
  EXPECT_EQ(corpus.sentences().size(), 20u);
}

TEST(CorpusTest, RowSentencesOnly) {
  Table t = CoupledTable(5);
  BinnedTable binned = BinnedTable::Compute(t);
  CorpusOptions options;
  options.column_sentences = false;
  Rng rng(3);
  Corpus corpus = Corpus::Build(binned, options, &rng);
  EXPECT_EQ(corpus.sentences().size(), 5u);
  for (const auto& s : corpus.sentences()) EXPECT_EQ(s.size(), 3u);
}

TEST(CorpusTest, FromSentencesWrapsVerbatim) {
  std::vector<Sentence> sentences = {{0, 1}, {2}};
  Corpus corpus = Corpus::FromSentences(sentences, 3);
  EXPECT_EQ(corpus.sentences().size(), 2u);
  EXPECT_EQ(corpus.total_words(), 3u);
  EXPECT_EQ(corpus.vocab_size(), 3u);
}

// ----------------------------------------------------------------- Vocab --

TEST(VocabTest, CountsWords) {
  Corpus corpus = Corpus::FromSentences({{0, 0, 1}, {1, 2}}, 4);
  Vocabulary vocab(corpus, 4);
  EXPECT_EQ(vocab.count(0), 2u);
  EXPECT_EQ(vocab.count(1), 2u);
  EXPECT_EQ(vocab.count(2), 1u);
  EXPECT_EQ(vocab.count(3), 0u);
  EXPECT_EQ(vocab.total_count(), 5u);
}

TEST(VocabTest, NegativeSamplingNeverPicksZeroCount) {
  Corpus corpus = Corpus::FromSentences({{0, 1, 1}}, 3);
  Vocabulary vocab(corpus, 3);
  Rng rng(4);
  for (int i = 0; i < 500; ++i) EXPECT_NE(vocab.SampleNegative(&rng), 2u);
}

TEST(VocabTest, NegativeSamplingFollowsPower) {
  // Word 1 occurs 8x as often as word 0; with the 0.75 power its sampling
  // ratio should be 8^0.75 ≈ 4.76, not 8.
  std::vector<Sentence> sentences;
  sentences.push_back(Sentence(8, 1));
  sentences.push_back(Sentence{0});
  Vocabulary vocab(Corpus::FromSentences(sentences, 2), 2);
  Rng rng(5);
  int ones = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ones += (vocab.SampleNegative(&rng) == 1);
  const double ratio = static_cast<double>(ones) / (n - ones);
  EXPECT_NEAR(ratio, std::pow(8.0, 0.75), 0.6);
}

// -------------------------------------------------------------- Word2Vec --

TEST(Word2VecTest, DeterministicWithSeedSingleThread) {
  Table t = CoupledTable(50);
  BinnedTable binned = BinnedTable::Compute(t);
  Rng rng(6);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = 16;
  options.epochs = 2;
  options.num_threads = 1;
  options.seed = 9;
  Word2VecModel a = Word2VecModel::Train(corpus, options);
  Word2VecModel b = Word2VecModel::Train(corpus, options);
  for (size_t w = 0; w < a.vocab_size(); ++w) {
    const auto va = a.vector(w);
    const auto vb = b.vector(w);
    for (size_t d = 0; d < a.dim(); ++d) EXPECT_EQ(va[d], vb[d]);
  }
}

TEST(Word2VecTest, CoOccurringTokensEndUpCloser) {
  // Three fully coupled columns: rows are either (a, x, p) or (b, y, q).
  // Tokens of the same coupled block share their entire row-context
  // distribution, so after SGNS training sim(a, x) must exceed sim(a, y)
  // (a and y never share a context). Column-sentences are disabled here:
  // they would make a co-occur with b (same column), diluting the signal
  // this test isolates.
  std::vector<std::string> c1;
  std::vector<std::string> c2;
  std::vector<std::string> c3;
  Rng data_rng(42);
  for (size_t i = 0; i < 300; ++i) {
    const bool flip = data_rng.Bernoulli(0.5);
    c1.push_back(flip ? "a" : "b");
    c2.push_back(flip ? "x" : "y");
    c3.push_back(flip ? "p" : "q");
  }
  Result<Table> made = Table::Make({Column::Categorical("c1", c1),
                                    Column::Categorical("c2", c2),
                                    Column::Categorical("c3", c3)});
  ASSERT_TRUE(made.ok());
  Table t = std::move(made).value();
  BinnedTable binned = BinnedTable::Compute(t);
  Rng rng(7);
  CorpusOptions corpus_options;
  corpus_options.column_sentences = false;
  Corpus corpus = Corpus::Build(binned, corpus_options, &rng);
  Word2VecOptions options;
  options.dim = 24;
  options.epochs = 10;
  options.seed = 21;
  Word2VecModel model = Word2VecModel::Train(corpus, options);

  auto dense = [&binned, &t](const char* col, const char* value) {
    const Column& c = t.column(col);
    for (size_t r = 0; r < c.size(); ++r) {
      if (!c.is_null(r) && c.cat_value(r) == value) {
        return binned.DenseIndex(binned.token(r, *t.schema().IndexOf(col)));
      }
    }
    ADD_FAILURE() << "value not found";
    return size_t{0};
  };
  const double sim_ax = model.CosineSimilarity(dense("c1", "a"), dense("c2", "x"));
  const double sim_ay = model.CosineSimilarity(dense("c1", "a"), dense("c2", "y"));
  EXPECT_GT(sim_ax, sim_ay);
}

TEST(Word2VecTest, ShapeAndFromVectors) {
  Word2VecModel m = Word2VecModel::FromVectors(2, {1.0f, 0.0f, 0.0f, 1.0f});
  EXPECT_EQ(m.vocab_size(), 2u);
  EXPECT_EQ(m.dim(), 2u);
  EXPECT_NEAR(m.CosineSimilarity(0, 1), 0.0, 1e-6);
  EXPECT_NEAR(m.CosineSimilarity(0, 0), 1.0, 1e-6);
}

TEST(Word2VecTest, EmptyCorpusYieldsInitVectors) {
  Corpus corpus = Corpus::FromSentences({}, 4);
  Word2VecOptions options;
  options.dim = 8;
  Word2VecModel model = Word2VecModel::Train(corpus, options);
  EXPECT_EQ(model.vocab_size(), 4u);
  EXPECT_EQ(model.dim(), 8u);
}

TEST(Word2VecTest, MultiThreadTrainingRuns) {
  Table t = CoupledTable(100);
  BinnedTable binned = BinnedTable::Compute(t);
  Rng rng(8);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 2;
  options.num_threads = 4;
  Word2VecModel model = Word2VecModel::Train(corpus, options);
  EXPECT_EQ(model.vocab_size(), binned.total_bins());
}

// -------------------------------------------------------------- CellModel --

TEST(CellModelTest, RowVectorIsAverageOfCellVectors) {
  Table t = CoupledTable(10);
  BinnedTable binned = BinnedTable::Compute(t);
  Rng rng(9);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 1;
  CellModel model(&binned, Word2VecModel::Train(corpus, options));

  const std::vector<size_t> cols = {0, 1, 2};
  const std::vector<float> rv = model.RowVector(0, cols);
  for (size_t d = 0; d < model.dim(); ++d) {
    float expected = 0.0f;
    for (size_t c : cols) expected += model.CellVector(0, c)[d];
    expected /= 3.0f;
    EXPECT_NEAR(rv[d], expected, 1e-6);
  }
}

TEST(CellModelTest, ColumnVectorAveragesRows) {
  Table t = CoupledTable(10);
  BinnedTable binned = BinnedTable::Compute(t);
  Rng rng(10);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 1;
  CellModel model(&binned, Word2VecModel::Train(corpus, options));

  const std::vector<size_t> rows = {0, 1, 2};
  const std::vector<float> cv = model.ColumnVector(1, rows);
  for (size_t d = 0; d < model.dim(); ++d) {
    float expected = 0.0f;
    for (size_t r : rows) expected += model.CellVector(r, 1)[d];
    expected /= 3.0f;
    EXPECT_NEAR(cv[d], expected, 1e-6);
  }
}

TEST(CellModelTest, RowMatrixStacksRows) {
  Table t = CoupledTable(6);
  BinnedTable binned = BinnedTable::Compute(t);
  Rng rng(11);
  Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = 4;
  options.epochs = 1;
  CellModel model(&binned, Word2VecModel::Train(corpus, options));
  const std::vector<size_t> rows = {1, 3};
  const std::vector<size_t> cols = {0, 1, 2};
  const std::vector<float> matrix = model.RowMatrix(rows, cols);
  ASSERT_EQ(matrix.size(), 2 * model.dim());
  const std::vector<float> r1 = model.RowVector(1, cols);
  for (size_t d = 0; d < model.dim(); ++d) EXPECT_EQ(matrix[d], r1[d]);
}

// ----------------------------------------------------------------- EmbDI --

TEST(EmbDiTest, CorpusCoversAllNodeKinds) {
  Table t = CoupledTable(20);
  BinnedTable binned = BinnedTable::Compute(t);
  EmbDiOptions options;
  options.walks_per_node = 2;
  options.walk_length = 5;
  Rng rng(12);
  Corpus corpus = BuildEmbDiCorpus(binned, options, &rng);
  const size_t nodes = binned.total_bins() + binned.num_rows() + binned.num_columns();
  EXPECT_EQ(corpus.vocab_size(), nodes);
  EXPECT_EQ(corpus.sentences().size(), nodes * options.walks_per_node);
  for (const auto& s : corpus.sentences()) {
    EXPECT_EQ(s.size(), options.walk_length);
    for (uint32_t w : s) EXPECT_LT(w, nodes);
  }
}

TEST(EmbDiTest, WalksAlternateAdjacentNodes) {
  // A row node must step to a token of that row; a token node to its column
  // node or to a row containing it.
  Table t = CoupledTable(15);
  BinnedTable binned = BinnedTable::Compute(t);
  EmbDiOptions options;
  options.walks_per_node = 1;
  options.walk_length = 8;
  Rng rng(13);
  Corpus corpus = BuildEmbDiCorpus(binned, options, &rng);
  const size_t B = binned.total_bins();
  const size_t n = binned.num_rows();
  for (const auto& walk : corpus.sentences()) {
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      const uint32_t from = walk[i];
      const uint32_t to = walk[i + 1];
      if (from >= B && from < B + n) {
        // Row -> one of its tokens.
        const size_t row = from - B;
        bool token_of_row = false;
        for (size_t c = 0; c < binned.num_columns(); ++c) {
          token_of_row |= (binned.DenseIndex(binned.token(row, c)) == to);
        }
        EXPECT_TRUE(token_of_row);
      } else if (from < B) {
        // Token -> its column node or a row containing it.
        const Token token = binned.TokenOfDense(from);
        if (to >= B + n) {
          EXPECT_EQ(to - B - n, TokenColumn(token));
        } else {
          ASSERT_GE(to, B);
          const size_t row = to - B;
          EXPECT_EQ(binned.token(row, TokenColumn(token)), token);
        }
      }
    }
  }
}

TEST(EmbDiTest, TrainReturnsTokenSpaceModel) {
  Table t = CoupledTable(20);
  BinnedTable binned = BinnedTable::Compute(t);
  EmbDiOptions options;
  options.walks_per_node = 2;
  options.walk_length = 6;
  options.word2vec.dim = 8;
  options.word2vec.epochs = 1;
  Word2VecModel model = TrainEmbDi(binned, options);
  EXPECT_EQ(model.vocab_size(), binned.total_bins());
  EXPECT_EQ(model.dim(), 8u);
}

}  // namespace
}  // namespace subtab
