// Extended coverage: the second-wave features — analyst task filters, the
// coverage evaluator's token-set class deduplication, NC row subsampling,
// latent row profiles, and targeted session-fragment generation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subtab/baselines/naive_clustering.h"
#include "subtab/data/datasets.h"
#include "subtab/eda/analyst.h"
#include "subtab/eda/session_generator.h"
#include "subtab/metrics/combined.h"
#include "subtab/rules/miner.h"

namespace subtab {
namespace {

// ----------------------------------------------------- Evaluator classes --

TEST(CoverageClassTest, SplitsOfOneItemsetShareOneClass) {
  // Three rules with the same token set (different lhs/rhs splits) must
  // collapse into a single class with identical T_R and U_R.
  Column a = Column::Categorical("a", {"x", "x", "x", "y"});
  Column b = Column::Categorical("b", {"p", "p", "p", "q"});
  Column c = Column::Categorical("c", {"1", "1", "1", "0"});
  Result<Table> t = Table::Make({std::move(a), std::move(b), std::move(c)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);

  const Token ta = binned.token(0, 0);
  const Token tb = binned.token(0, 1);
  const Token tc = binned.token(0, 2);
  RuleSet rules;
  Rule r1;
  r1.lhs = {ta, tb};
  r1.rhs = {tc};
  Rule r2;
  r2.lhs = {ta, tc};
  r2.rhs = {tb};
  Rule r3;
  r3.lhs = {tb, tc};
  r3.rhs = {ta};
  for (Rule* r : {&r1, &r2, &r3}) std::sort(r->lhs.begin(), r->lhs.end());
  rules.rules = {r1, r2, r3};

  CoverageEvaluator evaluator(binned, rules);
  EXPECT_EQ(evaluator.num_rules(), 3u);
  EXPECT_EQ(evaluator.num_classes(), 1u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(evaluator.rule_rows(i).Count(), 3u);
    EXPECT_EQ(evaluator.rule_columns(i), (std::vector<uint32_t>{0, 1, 2}));
  }
  // Covering any one split covers all three rules (same cells).
  const std::vector<size_t> covered = evaluator.CoveredRules({0}, {0, 1, 2});
  EXPECT_EQ(covered.size(), 3u);
  EXPECT_EQ(evaluator.CoveredCellCount({0}, {0, 1, 2}), 9u);  // 3 rows x 3 cols.
}

TEST(CoverageClassTest, ClassCountNeverExceedsRuleCount) {
  GeneratedDataset data = MakeCyber(1500, 21);
  BinnedTable binned = BinnedTable::Compute(data.table);
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.1;
  mining.min_confidence = 0.5;
  mining.min_rule_size = 3;
  RuleSet rules = MineRules(binned, mining);
  CoverageEvaluator evaluator(binned, rules);
  EXPECT_LE(evaluator.num_classes(), evaluator.num_rules());
  EXPECT_GT(evaluator.num_classes(), 0u);
}

// ------------------------------------------------------------- NC subsample --

TEST(NaiveClusteringTest, MaxRowsSubsampleStillReturnsKDistinctRows) {
  GeneratedDataset data = MakeSpotify(3000, 22);
  BinnedTable binned = BinnedTable::Compute(data.table);
  RuleSet rules;  // Empty rules: scores are diversity-only; fine for shape.
  CoverageEvaluator evaluator(binned, rules);
  NaiveClusteringOptions options;
  options.k = 8;
  options.l = 5;
  options.max_rows = 200;
  BaselineResult result = NaiveClustering(evaluator, options);
  EXPECT_EQ(result.row_ids.size(), 8u);
  std::set<size_t> unique(result.row_ids.begin(), result.row_ids.end());
  EXPECT_EQ(unique.size(), 8u);
  for (size_t r : result.row_ids) EXPECT_LT(r, 3000u);
}

// ------------------------------------------------------------ Analyst filters --

Table TwoByTwo(size_t n, double p_joint, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (size_t i = 0; i < n; ++i) {
    const bool joint = rng.Bernoulli(p_joint);
    a.push_back(joint ? "hi" : (rng.Bernoulli(0.5) ? "hi" : "lo"));
    b.push_back(joint ? "yes" : (rng.Bernoulli(0.5) ? "yes" : "no"));
  }
  Result<Table> t =
      Table::Make({Column::Categorical("a", a), Column::Categorical("b", b),
                   Column::Categorical("c", std::vector<std::string>(n, "const"))});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(AnalystFilterTest, FocusColumnRestrictsInsights) {
  Table t = TwoByTwo(500, 0.5, 31);
  BinnedTable binned = BinnedTable::Compute(t);
  AnalystOptions options;
  options.focus_column = 1;  // Only pairs touching column "b".
  options.max_token_support = 1.1;  // Disable the triviality filter here.
  AnalystReport report =
      SimulateAnalyst(binned, {0, 1, 2, 3, 4}, {0, 1, 2}, options);
  for (const Insight& insight : report.insights) {
    EXPECT_TRUE(TokenColumn(insight.a) == 1 || TokenColumn(insight.b) == 1)
        << insight.text;
  }
}

TEST(AnalystFilterTest, TrivialTokensAreDropped) {
  // Column "c" is constant => support 1.0 > threshold: no insight may use it.
  Table t = TwoByTwo(500, 0.5, 32);
  BinnedTable binned = BinnedTable::Compute(t);
  AnalystOptions options;
  options.max_token_support = 0.9;
  AnalystReport report =
      SimulateAnalyst(binned, {0, 1, 2, 3, 4, 5}, {0, 1, 2}, options);
  for (const Insight& insight : report.insights) {
    EXPECT_NE(TokenColumn(insight.a), 2u) << insight.text;
    EXPECT_NE(TokenColumn(insight.b), 2u) << insight.text;
  }
}

TEST(AnalystFilterTest, DefaultKeepsLegacyBehaviour) {
  Table t = TwoByTwo(300, 0.6, 33);
  BinnedTable binned = BinnedTable::Compute(t);
  AnalystReport report =
      SimulateAnalyst(binned, {0, 1, 2, 3}, {0, 1}, AnalystOptions{});
  EXPECT_GT(report.num_total, 0u);
}

// ------------------------------------------------------------- Profiles --

TEST(ProfileTest, PreferredGroupIsDeterministicAndInRange) {
  GeneratedDataset data = MakeFlights(200, 77);
  const DatasetSpec& spec = data.spec;
  ASSERT_GT(spec.num_profiles, 0u);
  for (size_t p = 0; p < spec.num_profiles; ++p) {
    for (size_t c = 0; c < spec.columns.size(); ++c) {
      const size_t g = spec.PreferredGroup(p, c);
      EXPECT_LT(g, spec.columns[c].num_groups());
      EXPECT_EQ(g, spec.PreferredGroup(p, c));  // Stable.
    }
  }
}

TEST(ProfileTest, AffineColumnsCorrelateAcrossRows) {
  // Two strongly affine columns must agree (via the shared profile) far
  // more often than independence predicts.
  DatasetSpec spec;
  spec.name = "toy";
  spec.num_rows = 6000;
  spec.seed = 5;
  spec.columns = {ColumnSpec::Numeric("x", {0, 100, 200, 300}, 1.0),
                  ColumnSpec::Numeric("y", {0, 100, 200, 300}, 1.0)};
  spec.columns[0].profile_affinity = 0.9;
  spec.columns[1].profile_affinity = 0.9;
  spec.num_profiles = 4;
  GeneratedDataset data = GenerateDataset(spec);

  // Mutual agreement on the (group of the) two columns.
  size_t joint_match = 0;
  size_t checked = 0;
  const Column& x = data.table.column(0);
  const Column& y = data.table.column(1);
  auto group_of = [](double v) { return static_cast<size_t>((v + 50) / 100); };
  for (size_t r = 0; r < data.table.num_rows(); ++r) {
    ++checked;
    const bool x_pref =
        group_of(x.num_value(r)) == data.spec.PreferredGroup(0, 0);
    const bool y_pref =
        group_of(y.num_value(r)) == data.spec.PreferredGroup(0, 1);
    joint_match += (x_pref && y_pref);
  }
  // Under independence the joint rate would be ~ (1/4)^2 plus noise; the
  // profile model must push it far above that for profile-0 rows (~1/4 of
  // rows at 0.9^2 adherence ≈ 0.2).
  EXPECT_GT(static_cast<double>(joint_match) / checked, 0.12);
}

TEST(ProfileTest, NoHarmfulProfileCollisionWithPlantedPatterns) {
  // The collision-avoidance fixup guarantees pattern confidence is not
  // destroyed: no profile may prefer the entire antecedent while preferring
  // a *different* consequent group. (A full antecedent match with the SAME
  // consequent is harmless — it reinforces the pattern — and unavoidable
  // for binary-column antecedents with many profiles.)
  for (const GeneratedDataset& data :
       {MakeFlights(100), MakeCyber(100), MakeSpotify(100), MakeCreditCard(100),
        MakeUsFunds(100), MakeBankLoans(100)}) {
    size_t harmful_pairs = 0;
    for (const PlantedPattern& pattern : data.spec.patterns) {
      for (size_t p = 0; p < data.spec.num_profiles; ++p) {
        bool full_lhs_match = true;
        for (const auto& [name, group] : pattern.lhs) {
          if (data.spec.PreferredGroup(p, data.ColumnIndex(name)) != group) {
            full_lhs_match = false;
            break;
          }
        }
        const bool rhs_differs =
            data.spec.PreferredGroup(p, data.ColumnIndex(pattern.rhs.first)) !=
            pattern.rhs.second;
        if (full_lhs_match && rhs_differs) {
          ++harmful_pairs;
          // Single-conjunct antecedents over few-group columns cannot always
          // escape (pigeonhole); the fixup must at least route the conflict
          // away from the two most popular profiles.
          EXPECT_GE(p, 2u) << data.spec.name << ": " << pattern.description;
        }
      }
    }
    EXPECT_LE(harmful_pairs, 1u) << data.spec.name;
  }
}

// ------------------------------------------------ Session pattern values --

TEST(SessionFragmentTest, PatternFragmentsCarryPatternValues) {
  // With full pattern bias, every valued fragment must sit in the group of
  // some planted-pattern conjunct of its column.
  GeneratedDataset data = MakeCyber(3000, 41);
  SessionGeneratorOptions options;
  options.num_sessions = 10;
  options.pattern_bias = 1.0;
  options.seed = 3;
  std::vector<Session> sessions = GenerateSessions(data, options);
  size_t valued = 0;
  for (const Session& s : sessions) {
    for (const SessionStep& step : s.steps) {
      if (!step.fragment.has_value) continue;
      ++valued;
      // The fragment column must appear in some pattern conjunct.
      bool in_pattern = false;
      for (const PlantedPattern& pattern : data.spec.patterns) {
        for (const auto& [name, group] : pattern.lhs) {
          in_pattern |= (name == step.fragment.column);
        }
        in_pattern |= (pattern.rhs.first == step.fragment.column);
      }
      EXPECT_TRUE(in_pattern) << step.fragment.column;
    }
  }
  EXPECT_GT(valued, 0u);
}

// ----------------------------------------------------- End-to-end sanity --

TEST(ExtendedIntegrationTest, SubTabBeatsNaiveClusteringOnCombined) {
  GeneratedDataset data = MakeFlights(3000, 55);
  SubTabConfig config;
  config.k = 10;
  config.l = 10;
  config.embedding.dim = 32;
  config.embedding.epochs = 3;
  config.embedding.num_threads = 1;
  config.seed = 11;
  Result<SubTab> st = SubTab::Fit(data.table, config);
  ASSERT_TRUE(st.ok());
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.1;
  mining.min_confidence = 0.6;
  mining.min_rule_size = 3;
  RuleSet rules = MineRules(st->preprocessed().binned(), mining);
  CoverageEvaluator evaluator(st->preprocessed().binned(), rules);

  SubTabView view = st->Select();
  const SubTableScore subtab =
      ScoreSubTable(evaluator, view.row_ids, view.col_ids, 0.5);
  NaiveClusteringOptions nc;
  nc.k = 10;
  nc.l = 10;
  nc.max_rows = 2000;
  const BaselineResult naive = NaiveClustering(evaluator, nc);
  EXPECT_GT(subtab.combined, naive.score.combined);
}

}  // namespace
}  // namespace subtab
