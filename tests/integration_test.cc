// End-to-end integration tests: the full SubTab pipeline against the
// baselines on planted-pattern data — miniature versions of the paper's
// headline comparisons (SubTab's combined score beats RAN/NC; query
// selection reuses pre-processing; target-focused mining works end to end).

#include <gtest/gtest.h>

#include <algorithm>

#include "subtab/baselines/naive_clustering.h"
#include "subtab/baselines/random_baseline.h"
#include "subtab/core/highlight.h"
#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/eda/analyst.h"
#include "subtab/rules/miner.h"

namespace subtab {
namespace {

struct Pipeline {
  GeneratedDataset data;
  SubTabConfig config;
  SubTab subtab;
  RuleSet rules;

  static Pipeline Build(GeneratedDataset dataset, std::string target = "") {
    SubTabConfig config;
    config.k = 10;
    config.l = 8;
    config.embedding.dim = 32;
    config.embedding.epochs = 3;
    config.embedding.num_threads = 1;
    config.seed = 123;
    if (!target.empty()) config.target_columns = {std::move(target)};
    Result<SubTab> st = SubTab::Fit(dataset.table, config);
    SUBTAB_CHECK(st.ok());

    RuleMiningOptions mining;
    mining.apriori.min_support = 0.08;
    mining.min_confidence = 0.6;
    mining.min_rule_size = 2;
    RuleSet rules = MineRules(st->preprocessed().binned(), mining);
    return Pipeline{std::move(dataset), std::move(config), std::move(*st),
                    std::move(rules)};
  }
};

TEST(IntegrationTest, SubTabBeatsSingleRandomDrawOnCombinedScore) {
  Pipeline p = Pipeline::Build(MakeFlights(4000, 31));
  ASSERT_FALSE(p.rules.empty());
  CoverageEvaluator evaluator(p.subtab.preprocessed().binned(), p.rules);

  SubTabView view = p.subtab.Select();
  const SubTableScore subtab_score =
      ScoreSubTable(evaluator, view.row_ids, view.col_ids, 0.5);

  RandomBaselineOptions ran;
  ran.k = 10;
  ran.l = 8;
  ran.max_iterations = 1;  // A single arbitrary display, like Pandas head().
  ran.time_budget_seconds = 5.0;
  ran.seed = 7;
  const BaselineResult single = RandomBaseline(evaluator, ran);

  EXPECT_GT(subtab_score.combined, single.score.combined);
}

TEST(IntegrationTest, SubTabCoverageBeatsNaiveClustering) {
  Pipeline p = Pipeline::Build(MakeSpotify(4000, 32));
  ASSERT_FALSE(p.rules.empty());
  CoverageEvaluator evaluator(p.subtab.preprocessed().binned(), p.rules);

  SubTabView view = p.subtab.Select();
  const SubTableScore subtab_score =
      ScoreSubTable(evaluator, view.row_ids, view.col_ids, 0.5);

  NaiveClusteringOptions nc;
  nc.k = 10;
  nc.l = 8;
  nc.seed = 3;
  const BaselineResult naive = NaiveClustering(evaluator, nc);

  // The paper's central claim (Fig. 8): the embedding-based selection
  // captures rule structure that one-hot clustering misses.
  EXPECT_GE(subtab_score.cell_coverage, naive.score.cell_coverage);
}

TEST(IntegrationTest, TargetedPipelineCoversTargetRules) {
  Pipeline p = Pipeline::Build(MakeFlights(4000, 33), "CANCELLED");
  const BinnedTable& binned = p.subtab.preprocessed().binned();
  const size_t cancelled = p.data.ColumnIndex("CANCELLED");

  RuleMiningOptions mining;
  mining.apriori.min_support = 0.05;
  mining.min_confidence = 0.6;
  mining.min_rule_size = 2;
  RuleSet targeted =
      MineRulesForTargets(binned, mining, {static_cast<uint32_t>(cancelled)});
  ASSERT_FALSE(targeted.empty());

  CoverageEvaluator evaluator(binned, targeted);
  SubTabView view = p.subtab.Select();
  // The target column is present, so target rules are coverable; the
  // selection should cover at least one.
  EXPECT_NE(std::find(view.col_ids.begin(), view.col_ids.end(), cancelled),
            view.col_ids.end());
  EXPECT_FALSE(evaluator.CoveredRules(view.row_ids, view.col_ids).empty());
}

TEST(IntegrationTest, QueryPathProducesScoredSubTables) {
  Pipeline p = Pipeline::Build(MakeBankLoans(3000, 34));
  CoverageEvaluator evaluator(p.subtab.preprocessed().binned(), p.rules);

  SpQuery q;
  q.filters = {Predicate::Str("term", CmpOp::kEq, "Long Term")};
  Result<SubTabView> view = p.subtab.SelectForQuery(q);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->row_ids.size(), 10u);

  const SubTableScore score =
      ScoreSubTable(evaluator, view->row_ids, view->col_ids, 0.5);
  EXPECT_GE(score.diversity, 0.0);
  EXPECT_LE(score.combined, 1.0);
}

TEST(IntegrationTest, HighlightedSubTableSupportsAnalystInsights) {
  // End-to-end Table 1 mechanics: SubTab display -> simulated analyst ->
  // at least one correct insight on planted data.
  Pipeline p = Pipeline::Build(MakeFlights(5000, 35), "CANCELLED");
  SubTabView view = p.subtab.Select();
  AnalystReport report = SimulateAnalyst(p.subtab.preprocessed().binned(),
                                         view.row_ids, view.col_ids,
                                         AnalystOptions{});
  EXPECT_GT(report.num_total, 0u);
}

TEST(IntegrationTest, RepeatedQueriesReuseEmbedding) {
  Pipeline p = Pipeline::Build(MakeCyber(3000, 36));
  const double preprocess_seconds =
      p.subtab.preprocessed().timings().total_seconds;
  double selection_total = 0.0;
  const char* protocols[] = {"tcp", "udp"};
  for (const char* proto : protocols) {
    SpQuery q;
    q.filters = {Predicate::Str("protocol", CmpOp::kEq, proto)};
    Result<SubTabView> view = p.subtab.SelectForQuery(q);
    ASSERT_TRUE(view.ok());
    selection_total += view->selection_seconds;
  }
  // Selection reuses the embedding: two query displays must not cost more
  // than pre-processing itself (Fig. 9's architectural point).
  EXPECT_LT(selection_total, preprocess_seconds * 2.0 + 0.5);
}

TEST(IntegrationTest, EndToEndDeterminism) {
  GeneratedDataset a = MakeSpotify(1500, 40);
  GeneratedDataset b = MakeSpotify(1500, 40);
  SubTabConfig config;
  config.k = 6;
  config.l = 5;
  config.embedding.dim = 16;
  config.embedding.epochs = 2;
  config.embedding.num_threads = 1;
  config.seed = 9;
  Result<SubTab> sa = SubTab::Fit(a.table, config);
  Result<SubTab> sb = SubTab::Fit(b.table, config);
  ASSERT_TRUE(sa.ok() && sb.ok());
  SubTabView va = sa->Select();
  SubTabView vb = sb->Select();
  EXPECT_EQ(va.row_ids, vb.row_ids);
  EXPECT_EQ(va.col_ids, vb.col_ids);
}

}  // namespace
}  // namespace subtab
