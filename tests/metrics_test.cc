// Tests for the informativeness metrics (Sec. 3.2), anchored on the exact
// numbers the paper derives from the Fig. 3 worked example: upcov = 36
// cells, sub-tables describing 28 / 26 / 24 cells, diversity 0.83 / 0.92,
// combined 0.80 / 0.79, and T̂(1)_sub optimal.

#include <gtest/gtest.h>

#include "subtab/baselines/brute_force.h"
#include "subtab/data/example_fixture.h"
#include "subtab/metrics/combined.h"
#include "subtab/util/rng.h"

namespace subtab {
namespace {

struct Fixture {
  Table table;
  BinnedTable binned;
  RuleSet rules;

  Fixture()
      : table(MakeExampleTable()),
        binned(BinnedTable::Compute(table)),
        rules(EnumerateRuleFamily(binned, kExampleCancelled)) {}
};

// ----------------------------------------------------------- Cell coverage --

TEST(CellCoverageTest, UpcovIs36OnExample) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  EXPECT_EQ(evaluator.upcov(), 36u);
}

TEST(CellCoverageTest, SubTable1Describes28Cells) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  const size_t cells =
      evaluator.CoveredCellCount(ExampleSubTableRows(), ExampleSubTable1Cols());
  EXPECT_EQ(cells, 28u);
  EXPECT_NEAR(evaluator.CellCoverage(ExampleSubTableRows(), ExampleSubTable1Cols()),
              28.0 / 36.0, 1e-12);
}

TEST(CellCoverageTest, SubTable2Describes26Cells) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  EXPECT_EQ(evaluator.CoveredCellCount(ExampleSubTableRows(), ExampleSubTable2Cols()),
            26u);
}

TEST(CellCoverageTest, SubTable3Describes24Cells) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  EXPECT_EQ(evaluator.CoveredCellCount(ExampleSubTableRows(), ExampleSubTable3Cols()),
            24u);
}

TEST(CellCoverageTest, CoveredRuleNeedsColumnsAndRow) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  // With only the CANCELLED column visible, no rule has U_R ⊆ U_sub.
  EXPECT_TRUE(evaluator.CoveredRules({0, 4, 6}, {kExampleCancelled}).empty());
  // With all columns but no rows, nothing is covered either.
  EXPECT_TRUE(evaluator.CoveredRules({}, {0, 1, 2, 3, 4}).empty());
}

TEST(CellCoverageTest, FullTableSelectionCoversEverything) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  const std::vector<size_t> all_rows = {0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<size_t> all_cols = {0, 1, 2, 3, 4};
  EXPECT_EQ(evaluator.CoveredCellCount(all_rows, all_cols), evaluator.upcov());
  EXPECT_NEAR(evaluator.CellCoverage(all_rows, all_cols), 1.0, 1e-12);
}

TEST(CellCoverageTest, EmptyRuleSetGivesZero) {
  Fixture f;
  RuleSet empty;
  CoverageEvaluator evaluator(f.binned, empty);
  EXPECT_EQ(evaluator.upcov(), 0u);
  EXPECT_DOUBLE_EQ(evaluator.CellCoverage({0}, {0, 1}), 0.0);
}

TEST(CellCoverageTest, MonotoneInRows) {
  // cellCov is monotone under row addition (the submodularity argument of
  // Prop. 4.3 relies on this).
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  const std::vector<size_t> cols = {0, 1, 2, 3, 4};
  double prev = 0.0;
  std::vector<size_t> rows;
  for (size_t r = 0; r < 8; ++r) {
    rows.push_back(r);
    const double cov = evaluator.CellCoverage(rows, cols);
    EXPECT_GE(cov, prev - 1e-12);
    prev = cov;
  }
}

TEST(CellCoverageTest, SubmodularMarginalGains) {
  // Marginal gain of a fixed row never increases as the base set grows.
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  const std::vector<size_t> cols = {0, 1, 2, 3, 4};
  for (size_t probe = 0; probe < 8; ++probe) {
    double prev_gain = 1e18;
    std::vector<size_t> base;
    for (size_t r = 0; r < 8; ++r) {
      if (r == probe) continue;
      std::vector<size_t> with = base;
      with.push_back(probe);
      const double gain = evaluator.CellCoverage(with, cols) -
                          evaluator.CellCoverage(base, cols);
      EXPECT_LE(gain, prev_gain + 1e-12);
      prev_gain = gain;
      base.push_back(r);
    }
  }
}

TEST(CoverageAccumulatorTest, MatchesBatchEvaluation) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  const std::vector<size_t> cols = ExampleSubTable1Cols();
  CoverageAccumulator acc(evaluator, cols);
  std::vector<size_t> rows;
  for (size_t r : {0u, 4u, 6u}) {
    const size_t gain = acc.GainOfRow(r);
    const size_t before = acc.covered_cells();
    acc.AddRow(r);
    EXPECT_EQ(acc.covered_cells(), before + gain);
    rows.push_back(r);
    EXPECT_EQ(acc.covered_cells(), evaluator.CoveredCellCount(rows, cols));
  }
  EXPECT_EQ(acc.covered_cells(), 28u);
}

TEST(CoverageAccumulatorTest, GainOfAlreadyCoveredRowCanBeZero) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  CoverageAccumulator acc(evaluator, {0, 1, 2, 3, 4});
  acc.AddRow(0);
  // Row 0 activates all its rules; re-probing it gains nothing.
  EXPECT_EQ(acc.GainOfRow(0), 0u);
}

TEST(CellCoverageTest, RuleCellCountIsRowsTimesColumns) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  for (size_t i = 0; i < evaluator.num_rules(); ++i) {
    EXPECT_EQ(evaluator.RuleCellCount(i),
              evaluator.rule_rows(i).Count() * evaluator.rule_columns(i).size());
  }
}

// -------------------------------------------------------------- Diversity --

TEST(DiversityTest, Example38Values) {
  // divers(T̂(1)_sub) = 1 - avg(0, 0.25, 0.25) = 5/6 ≈ 0.83.
  Fixture f;
  const double d1 = Diversity(f.binned, ExampleSubTableRows(), ExampleSubTable1Cols());
  EXPECT_NEAR(d1, 1.0 - (0.0 + 0.25 + 0.25) / 3.0, 1e-12);
  // divers(T̂(3)_sub) = 1 - avg(0, 0, 0.25) = 11/12 ≈ 0.92 (Fig. 4).
  const double d3 = Diversity(f.binned, ExampleSubTableRows(), ExampleSubTable3Cols());
  EXPECT_NEAR(d3, 1.0 - 0.25 / 3.0, 1e-12);
}

TEST(DiversityTest, RowSimilarityCountsSharedBins) {
  Fixture f;
  // Rows 0 and 1 share CANCELLED=1, DEP=NaN, YEAR=2015, SCHED=afternoon.
  EXPECT_NEAR(RowSimilarity(f.binned, 0, 1, {0, 1, 2, 3, 4}), 4.0 / 5.0, 1e-12);
  // A row is fully similar to itself.
  EXPECT_DOUBLE_EQ(RowSimilarity(f.binned, 2, 2, {0, 1, 2, 3, 4}), 1.0);
}

TEST(DiversityTest, NullsCompareEqual) {
  Fixture f;
  // Rows 0 and 3 both have DEP._TIME = NaN.
  EXPECT_DOUBLE_EQ(RowSimilarity(f.binned, 0, 3, {kExampleDepTime}), 1.0);
}

TEST(DiversityTest, SingleRowIsMaximallyDiverse) {
  Fixture f;
  EXPECT_DOUBLE_EQ(Diversity(f.binned, {2}, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Diversity(f.binned, {}, {0, 1}), 1.0);
}

TEST(DiversityTest, IdenticalRowsGiveZero) {
  Column a = Column::Categorical("a", {"x", "x"});
  Column b = Column::Categorical("b", {"y", "y"});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  EXPECT_DOUBLE_EQ(Diversity(binned, {0, 1}, {0, 1}), 0.0);
}

TEST(DiversityTest, BoundedInUnitInterval) {
  Fixture f;
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> rows = rng.SampleWithoutReplacement(8, 1 + rng.Uniform(4));
    std::vector<size_t> cols = rng.SampleWithoutReplacement(5, 1 + rng.Uniform(5));
    const double d = Diversity(f.binned, rows, cols);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

// --------------------------------------------------------------- Combined --

TEST(CombinedTest, Example39Scores) {
  // combined(T̂(1)) = 0.5·28/36 + 0.5·(5/6) ≈ 0.806;
  // combined(T̂(3)) = 0.5·24/36 + 0.5·(11/12) ≈ 0.792.
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  const SubTableScore s1 =
      ScoreSubTable(evaluator, ExampleSubTableRows(), ExampleSubTable1Cols(), 0.5);
  EXPECT_NEAR(s1.combined, 0.5 * 28.0 / 36.0 + 0.5 * 5.0 / 6.0, 1e-12);
  const SubTableScore s3 =
      ScoreSubTable(evaluator, ExampleSubTableRows(), ExampleSubTable3Cols(), 0.5);
  EXPECT_NEAR(s3.combined, 0.5 * 24.0 / 36.0 + 0.5 * 11.0 / 12.0, 1e-12);
  EXPECT_GT(s1.combined, s3.combined);  // The paper's trade-off conclusion.
}

TEST(CombinedTest, AlphaExtremes) {
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  const SubTableScore cov_only =
      ScoreSubTable(evaluator, ExampleSubTableRows(), ExampleSubTable1Cols(), 1.0);
  EXPECT_DOUBLE_EQ(cov_only.combined, cov_only.cell_coverage);
  const SubTableScore div_only =
      ScoreSubTable(evaluator, ExampleSubTableRows(), ExampleSubTable1Cols(), 0.0);
  EXPECT_DOUBLE_EQ(div_only.combined, div_only.diversity);
}

TEST(CombinedTest, OneShotWrapperMatchesEvaluator) {
  Fixture f;
  const SubTableScore a = ScoreSubTable(f.binned, f.rules, ExampleSubTableRows(),
                                        ExampleSubTable1Cols(), 0.5);
  CoverageEvaluator evaluator(f.binned, f.rules);
  const SubTableScore b =
      ScoreSubTable(evaluator, ExampleSubTableRows(), ExampleSubTable1Cols(), 0.5);
  EXPECT_DOUBLE_EQ(a.combined, b.combined);
}

TEST(CombinedTest, ExampleSubTable1IsOptimal) {
  // "In fact, T̂(1)_sub is the optimal sub-table for this example."
  Fixture f;
  CoverageEvaluator evaluator(f.binned, f.rules);
  BruteForceOptions options;
  options.k = 3;
  options.l = 4;
  options.target_cols = {kExampleCancelled};
  options.alpha = 0.5;
  const BaselineResult opt = BruteForceOptimal(evaluator, options);
  const SubTableScore paper =
      ScoreSubTable(evaluator, ExampleSubTableRows(), ExampleSubTable1Cols(), 0.5);
  EXPECT_NEAR(opt.score.combined, paper.combined, 1e-9);
}

}  // namespace
}  // namespace subtab
