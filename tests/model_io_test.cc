// Tests for model persistence: save/load round-trips of the pre-processing
// artifact, schema validation, and corruption handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "subtab/core/model_io.h"
#include "subtab/core/subtab.h"
#include "subtab/core/select.h"
#include "subtab/data/datasets.h"

namespace subtab {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

SubTabConfig FastConfig() {
  SubTabConfig config;
  config.embedding.dim = 16;
  config.embedding.epochs = 2;
  config.embedding.num_threads = 1;
  config.seed = 3;
  return config;
}

TEST(ModelIoTest, RoundTripPreservesBinningAndVectors) {
  GeneratedDataset data = MakeSpotify(600, 61);
  PreprocessedTable pre = Preprocess(data.table, FastConfig());
  const std::string path = TempPath("model_roundtrip.stab");
  ASSERT_TRUE(SaveModel(pre, data.table, path).ok());

  Result<PreprocessedTable> loaded = LoadModel(data.table, path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Token matrices identical.
  const BinnedTable& a = pre.binned();
  const BinnedTable& b = loaded->binned();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  ASSERT_EQ(a.total_bins(), b.total_bins());
  for (size_t r = 0; r < a.num_rows(); r += 7) {
    for (size_t c = 0; c < a.num_columns(); ++c) {
      ASSERT_EQ(a.token(r, c), b.token(r, c));
    }
  }
  // Embedding vectors identical.
  const Word2VecModel& ma = pre.cell_model().word2vec();
  const Word2VecModel& mb = loaded->cell_model().word2vec();
  ASSERT_EQ(ma.vocab_size(), mb.vocab_size());
  ASSERT_EQ(ma.dim(), mb.dim());
  for (size_t w = 0; w < ma.vocab_size(); ++w) {
    const auto va = ma.vector(w);
    const auto vb = mb.vector(w);
    for (size_t d = 0; d < ma.dim(); ++d) ASSERT_EQ(va[d], vb[d]);
  }
  // Labels survive.
  EXPECT_EQ(a.TokenLabel(a.token(0, 0)), b.TokenLabel(b.token(0, 0)));
}

TEST(ModelIoTest, SelectionFromLoadedModelMatchesOriginal) {
  GeneratedDataset data = MakeCyber(800, 62);
  PreprocessedTable pre = Preprocess(data.table, FastConfig());
  const std::string path = TempPath("model_select.stab");
  ASSERT_TRUE(SaveModel(pre, data.table, path).ok());
  Result<PreprocessedTable> loaded = LoadModel(data.table, path);
  ASSERT_TRUE(loaded.ok());

  SelectionScope scope;
  const Selection original = SelectSubTable(pre, 6, 5, scope, 99);
  const Selection reloaded = SelectSubTable(*loaded, 6, 5, scope, 99);
  EXPECT_EQ(original.row_ids, reloaded.row_ids);
  EXPECT_EQ(original.col_ids, reloaded.col_ids);
}

TEST(ModelIoTest, RejectsSchemaMismatch) {
  GeneratedDataset data = MakeSpotify(300, 63);
  PreprocessedTable pre = Preprocess(data.table, FastConfig());
  const std::string path = TempPath("model_schema.stab");
  ASSERT_TRUE(SaveModel(pre, data.table, path).ok());

  // Different column count.
  GeneratedDataset other = MakeCyber(300, 64);
  Result<PreprocessedTable> wrong = LoadModel(other.table, path);
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kFailedPrecondition);

  // Same column count, different names: SP has 15 columns like CY.
  EXPECT_EQ(data.table.num_columns(), other.table.num_columns());
}

TEST(ModelIoTest, RejectsGarbageAndTruncation) {
  const std::string garbage = TempPath("model_garbage.stab");
  {
    std::ofstream out(garbage, std::ios::binary);
    out << "definitely not a model";
  }
  GeneratedDataset data = MakeSpotify(200, 65);
  Result<PreprocessedTable> r = LoadModel(data.table, garbage);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  // Truncate a valid file.
  PreprocessedTable pre = Preprocess(data.table, FastConfig());
  const std::string path = TempPath("model_trunc.stab");
  ASSERT_TRUE(SaveModel(pre, data.table, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  const std::string trunc_path = TempPath("model_trunc2.stab");
  {
    std::ofstream out(trunc_path, std::ios::binary);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size() / 2));
  }
  Result<PreprocessedTable> t = LoadModel(data.table, trunc_path);
  EXPECT_FALSE(t.ok());
}

TEST(ModelIoTest, MissingFileIsNotFound) {
  GeneratedDataset data = MakeSpotify(100, 66);
  Result<PreprocessedTable> r = LoadModel(data.table, "/nonexistent/model.stab");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}


TEST(ModelIoTest, FitCachedRoundTrip) {
  GeneratedDataset data = MakeSpotify(500, 67);
  const std::string path = TempPath("model_fitcached.stab");
  std::remove(path.c_str());

  // First fit: cache miss, trains and saves.
  Result<SubTab> first = SubTab::FitCached(data.table, FastConfig(), path);
  ASSERT_TRUE(first.ok());
  EXPECT_GT(first->preprocessed().timings().total_seconds, 0.0);

  // Second fit: cache hit, no training time recorded.
  Result<SubTab> second = SubTab::FitCached(data.table, FastConfig(), path);
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->preprocessed().timings().training_seconds, 0.0);

  // Identical selections either way.
  SubTabView a = first->Select(5, 5);
  SubTabView b = second->Select(5, 5);
  EXPECT_EQ(a.row_ids, b.row_ids);
  EXPECT_EQ(a.col_ids, b.col_ids);
}

}  // namespace
}  // namespace subtab
