// Tests for the ops plane (src/subtab/ops/): Prometheus text-exposition
// conformance (a dependency-free mini-parser checks name/label grammar,
// cumulative histogram buckets ending in +Inf, _sum/_count consistency, and
// that every MetricsRegistry instrument appears exactly once), SloMonitor
// multi-window burn-rate math + hysteresis under a synthetic metrics feed,
// SLO-adaptive admission (tighten while burning, restore on recovery, and
// shed messages / stats agreeing on the EFFECTIVE bound), and an end-to-end
// admin-server session over a real loopback socket: all five endpoints,
// with /healthz flipping under induced shedding and recovering.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "subtab/ops/admin_server.h"
#include "subtab/ops/prometheus.h"
#include "subtab/ops/slo_monitor.h"
#include "subtab/service/engine.h"
#include "subtab/util/metrics.h"

namespace subtab {
namespace {

using ops::AdminServer;
using ops::AdminServerOptions;
using ops::HealthState;
using ops::SloMonitor;
using ops::SloOptions;
using service::EngineOptions;
using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;

Table SmallTable() {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (int i = 0; i < 400; ++i) {
    a.push_back(static_cast<double>(i % 97));
    b.push_back(static_cast<double>(i % 13) * 1.5);
    c.push_back(i % 4 == 0 ? "w" : i % 4 == 1 ? "x" : i % 4 == 2 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

SubTabConfig SmallConfig(uint64_t seed = 3) {
  SubTabConfig config;
  config.k = 5;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

// ------------------------------------------------- Prometheus mini-parser --

bool LegalMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':';
    const bool digit = std::isdigit(static_cast<unsigned char>(c));
    if (!(alpha || (i > 0 && digit))) return false;
  }
  return true;
}

struct Sample {
  std::string name;    ///< Metric name without labels.
  std::string labels;  ///< Raw text between {} ("" when absent).
  double value = 0.0;
};

/// Parsed exposition document. Fails the current test (ADD_FAILURE) on any
/// grammar violation, so conformance checks read as plain assertions.
struct Exposition {
  std::map<std::string, std::string> types;  ///< family -> counter/gauge/...
  std::set<std::string> helped;
  std::vector<Sample> samples;

  static Exposition Parse(const std::string& text) {
    Exposition doc;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line.rfind("# TYPE ", 0) == 0;
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        if (sp == std::string::npos) {
          ADD_FAILURE() << "malformed header: " << line;
          continue;
        }
        const std::string family = rest.substr(0, sp);
        EXPECT_TRUE(LegalMetricName(family)) << family;
        if (is_type) {
          EXPECT_EQ(doc.types.count(family), 0u)
              << "duplicate TYPE for " << family;
          doc.types[family] = rest.substr(sp + 1);
        } else {
          EXPECT_EQ(doc.helped.count(family), 0u)
              << "duplicate HELP for " << family;
          doc.helped.insert(family);
        }
        continue;
      }
      if (line[0] == '#') continue;  // Other comments are legal.
      Sample sample;
      const size_t brace = line.find('{');
      const size_t value_sp = line.rfind(' ');
      if (value_sp == std::string::npos) {
        ADD_FAILURE() << "sample without value: " << line;
        continue;
      }
      if (brace != std::string::npos && brace < value_sp) {
        const size_t close = line.rfind('}', value_sp);
        if (close == std::string::npos) {
          ADD_FAILURE() << "unterminated labels: " << line;
          continue;
        }
        sample.name = line.substr(0, brace);
        sample.labels = line.substr(brace + 1, close - brace - 1);
      } else {
        sample.name = line.substr(0, value_sp);
      }
      EXPECT_TRUE(LegalMetricName(sample.name)) << sample.name;
      sample.value = std::strtod(line.c_str() + value_sp + 1, nullptr);
      doc.samples.push_back(std::move(sample));
    }
    return doc;
  }

  std::vector<Sample> Of(const std::string& name) const {
    std::vector<Sample> out;
    for (const Sample& s : samples) {
      if (s.name == name) out.push_back(s);
    }
    return out;
  }
};

/// Full conformance check of a rendered snapshot: every instrument exactly
/// once, under its family's HELP/TYPE, histograms cumulative and
/// +Inf-terminated, _sum/_count matching the snapshot.
void CheckExposition(const MetricsSnapshot& snap, const std::string& text) {
  const Exposition doc = Exposition::Parse(text);

  size_t families = 0;
  for (const auto& [dotted, value] : snap.counters) {
    const std::string name = "subtab_" + ops::SanitizeMetricName(dotted);
    ++families;
    ASSERT_EQ(doc.types.count(name), 1u) << name;
    EXPECT_EQ(doc.types.at(name), "counter") << name;
    EXPECT_EQ(doc.helped.count(name), 1u) << name;
    const std::vector<Sample> samples = doc.Of(name);
    ASSERT_EQ(samples.size(), 1u) << name << " must appear exactly once";
    EXPECT_EQ(samples[0].value, static_cast<double>(value)) << name;
  }
  for (const auto& [dotted, value] : snap.gauges) {
    const std::string name = "subtab_" + ops::SanitizeMetricName(dotted);
    ++families;
    ASSERT_EQ(doc.types.count(name), 1u) << name;
    EXPECT_EQ(doc.types.at(name), "gauge") << name;
    const std::vector<Sample> samples = doc.Of(name);
    ASSERT_EQ(samples.size(), 1u) << name << " must appear exactly once";
    EXPECT_DOUBLE_EQ(samples[0].value, value) << name;
  }
  for (const auto& [dotted, hist] : snap.histograms) {
    const std::string name =
        "subtab_" + ops::SanitizeMetricName(dotted) + "_seconds";
    ++families;
    ASSERT_EQ(doc.types.count(name), 1u) << name;
    EXPECT_EQ(doc.types.at(name), "histogram") << name;

    const std::vector<Sample> buckets = doc.Of(name + "_bucket");
    ASSERT_EQ(buckets.size(), LatencyHistogram::kBuckets) << name;
    double previous = -1.0;
    for (const Sample& bucket : buckets) {
      EXPECT_EQ(bucket.labels.rfind("le=\"", 0), 0u) << bucket.labels;
      EXPECT_GE(bucket.value, previous) << name << " buckets not cumulative";
      previous = bucket.value;
    }
    EXPECT_EQ(buckets.back().labels, "le=\"+Inf\"") << name;

    const std::vector<Sample> count = doc.Of(name + "_count");
    ASSERT_EQ(count.size(), 1u) << name;
    EXPECT_EQ(count[0].value, static_cast<double>(hist.count)) << name;
    // The +Inf bucket IS the total count.
    EXPECT_EQ(buckets.back().value, count[0].value) << name;

    const std::vector<Sample> sum = doc.Of(name + "_sum");
    ASSERT_EQ(sum.size(), 1u) << name;
    EXPECT_NEAR(sum[0].value, hist.sum_seconds, 1e-9) << name;
  }
  // Nothing extra: every family in the document maps back to an instrument.
  EXPECT_EQ(doc.types.size(), families);
}

TEST(PrometheusTest, NameSanitizationAndEscaping) {
  EXPECT_EQ(ops::SanitizeMetricName("pipeline.stage.queue_scan"),
            "pipeline_stage_queue_scan");
  EXPECT_EQ(ops::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(ops::SanitizeMetricName("a-b c/d"), "a_b_c_d");
  EXPECT_EQ(ops::SanitizeMetricName(""), "_");
  EXPECT_EQ(ops::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(ops::EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(ops::EscapeHelpText("line1\nline2 \\ \"quoted\""),
            "line1\\nline2 \\\\ \"quoted\"");
}

TEST(PrometheusTest, BucketBoundsMatchLatencyHistogram) {
  // Bucket b holds microsecond values below 2^b; the renderer's le bounds
  // must agree with LatencyHistogram::Record's bit_width bucketing.
  EXPECT_DOUBLE_EQ(ops::LatencyBucketUpperBoundSeconds(0), 1e-6);
  EXPECT_DOUBLE_EQ(ops::LatencyBucketUpperBoundSeconds(10), 1024e-6);
  EXPECT_TRUE(std::isinf(
      ops::LatencyBucketUpperBoundSeconds(LatencyHistogram::kBuckets - 1)));

  LatencyHistogram h;
  h.Record(0.0005);  // 500us -> bucket bit_width(500)=9, below 2^9us.
  const LatencyHistogram::Snapshot snap = h.TakeSnapshot();
  for (size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (snap.buckets[b] == 0) continue;
    EXPECT_LE(0.0005, ops::LatencyBucketUpperBoundSeconds(b));
  }
}

TEST(PrometheusTest, RenderedRegistryConforms) {
  MetricsRegistry registry;
  registry.counter("engine.requests.submitted")->Add(42);
  registry.counter("9starts.with.digit")->Add(1);
  registry.gauge("pipeline.worker_utilization")->Set(0.75);
  LatencyHistogram* h = registry.histogram("pipeline.latency");
  h->Record(0.001);
  h->Record(0.010);
  h->Record(3.5);

  const MetricsSnapshot snap = registry.Snapshot();
  const std::string text = ops::RenderPrometheus(snap);
  CheckExposition(snap, text);
  EXPECT_NE(text.find("subtab_engine_requests_submitted 42"),
            std::string::npos);
  EXPECT_NE(text.find("subtab_pipeline_latency_seconds_bucket"),
            std::string::npos);
}

TEST(PrometheusTest, LiveEngineRegistryConformsWithEveryInstrumentOnce) {
  EngineOptions options;
  options.num_threads = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", SmallTable(), SmallConfig()).ok());
  for (int i = 0; i < 4; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query.filters = {
        Predicate::Num("a", CmpOp::kGe, static_cast<double>(i))};
    EXPECT_TRUE(engine.Select(request).status.ok());
  }
  // A monitor adds its slo.* gauges into the SAME registry; the scrape must
  // cover them too.
  SloMonitor monitor(&engine);
  monitor.TickWithSnapshotForTesting(engine.metrics().Snapshot(), 0.0);

  engine.Stats();  // Refresh gauges like /metrics does.
  const MetricsSnapshot snap = engine.metrics().Snapshot();
  CheckExposition(snap, ops::RenderPrometheus(snap));
  EXPECT_GE(snap.counters.size() + snap.gauges.size() + snap.histograms.size(),
            30u);  // The engine's instrument catalog plus slo.*.
}

// --------------------------------------------------------------- SloMonitor --

/// Synthetic cumulative metrics feed: each Tick() adds traffic and returns
/// the registry-shaped snapshot the monitor would scrape.
struct SyntheticFeed {
  uint64_t submitted = 0;
  uint64_t shed = 0;
  LatencyHistogram latency;

  MetricsSnapshot Tick(uint64_t add_submitted, uint64_t add_shed,
                       size_t latency_records, double latency_seconds) {
    submitted += add_submitted;
    shed += add_shed;
    for (size_t i = 0; i < latency_records; ++i) {
      latency.Record(latency_seconds);
    }
    MetricsSnapshot snap;
    snap.counters["engine.requests.submitted"] = submitted;
    snap.counters["pipeline.shed.global_queue"] = shed;
    snap.counters["pipeline.shed.tenant"] = 0;
    snap.histograms["pipeline.latency"] = latency.TakeSnapshot();
    return snap;
  }
};

SloOptions TestSloOptions() {
  SloOptions slo;
  slo.short_window_seconds = 2.0;
  slo.long_window_seconds = 6.0;
  slo.latency_p95_objective_seconds = 0.1;
  slo.shed_rate_objective = 0.01;
  slo.recovery_ticks = 2;
  return slo;
}

TEST(SloMonitorTest, BurnEscalatesAndHysteresisRecovers) {
  ServingEngine engine;  // Host for the slo.* gauges and the trace sink.
  SloMonitor monitor(&engine, TestSloOptions());
  SyntheticFeed feed;
  double now = 0.0;

  // Healthy baseline: plenty of traffic, fast, nothing shed.
  monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 0.001), now++);
  monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 0.001), now++);
  EXPECT_EQ(monitor.health(), HealthState::kOk);
  EXPECT_EQ(monitor.status().transitions, 0u);

  // Latency blows through the objective (1s >> 0.1s): both windows burn
  // (the long window falls back to the oldest retained sample), health
  // escalates ONE level per tick — never straight to unhealthy.
  monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 1.0), now++);
  EXPECT_EQ(monitor.health(), HealthState::kDegraded);
  EXPECT_GT(monitor.status().burn_latency_short, 1.0);
  EXPECT_GT(monitor.status().burn_latency_long, 1.0);
  monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 1.0), now++);
  EXPECT_EQ(monitor.health(), HealthState::kUnhealthy);
  EXPECT_EQ(monitor.status().transitions, 2u);

  // Load drops. The short window still covers the slow records for a tick
  // or two (that's the point of window math), then runs clean; recovery
  // needs recovery_ticks clean ticks PER LEVEL — no flapping straight back.
  size_t ticks_to_ok = 0;
  while (monitor.health() != HealthState::kOk && ticks_to_ok < 20) {
    monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 0.001), now++);
    ++ticks_to_ok;
  }
  EXPECT_EQ(monitor.health(), HealthState::kOk);
  // Two levels x recovery_ticks=2, plus the ticks the short window needed
  // to age the slow records out.
  EXPECT_GE(ticks_to_ok, 4u);
  EXPECT_EQ(monitor.status().transitions, 4u);

  // The transitions were committed as traces into the engine's sink.
  ASSERT_NE(engine.trace_sink(), nullptr);
  size_t transition_traces = 0;
  for (const auto& trace : engine.trace_sink()->Peek()) {
    if (trace->name == "slo.transition") ++transition_traces;
  }
  EXPECT_EQ(transition_traces, 4u);

  // And exported as slo.* gauges in the engine's registry.
  const MetricsSnapshot snap = engine.metrics().Snapshot();
  EXPECT_EQ(snap.gauges.at("slo.health"), 0.0);
  EXPECT_EQ(snap.counters.at("slo.transitions"), 4u);
  EXPECT_GE(snap.counters.at("slo.ticks"), 6u);
}

TEST(SloMonitorTest, ShedRateBurnsIndependentlyOfLatency) {
  ServingEngine engine;
  SloMonitor monitor(&engine, TestSloOptions());
  SyntheticFeed feed;
  double now = 0.0;
  monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 0.001), now++);
  // 10% shed against a 1% objective, latency fine.
  monitor.TickWithSnapshotForTesting(feed.Tick(100, 10, 90, 0.001), now++);
  EXPECT_EQ(monitor.health(), HealthState::kDegraded);
  const ops::SloStatus status = monitor.status();
  EXPECT_GT(status.burn_shed_short, 1.0);
  EXPECT_LT(status.burn_latency_short, 1.0);
}

TEST(SloMonitorTest, SpikeInShortWindowOnlyDoesNotFlipHealth) {
  SloOptions slo = TestSloOptions();
  slo.long_window_seconds = 60.0;
  ServingEngine engine;
  SloMonitor monitor(&engine, slo);
  SyntheticFeed feed;
  // A long healthy history, so the long window has a real (old) reference
  // sample and a one-tick spike dilutes to nothing across it.
  double now = 0.0;
  for (int i = 0; i < 70; ++i) {
    monitor.TickWithSnapshotForTesting(feed.Tick(1000, 0, 1000, 0.001), now++);
  }
  EXPECT_EQ(monitor.health(), HealthState::kOk);
  // One burst of slow requests — big enough to push the SHORT window's p95
  // into the slow bucket (the window also covers the previous healthy
  // tick), yet diluted to <5% across the ~60s long window -> no transition.
  monitor.TickWithSnapshotForTesting(feed.Tick(200, 0, 200, 1.0), now++);
  EXPECT_GT(monitor.status().burn_latency_short, 1.0);
  EXPECT_EQ(monitor.health(), HealthState::kOk);
}

// ------------------------------------------------------ adaptive admission --

TEST(AdaptiveAdmissionTest, TightensWhileBurningAndRestoresOnRecovery) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 64;
  options.slo_adaptive_admission = true;
  ServingEngine engine(options);
  EXPECT_EQ(engine.effective_max_queue_depth(), 64u);

  SloOptions slo = TestSloOptions();
  slo.adaptive_admission = true;
  slo.min_queue_depth = 4;
  SloMonitor monitor(&engine, slo);
  SyntheticFeed feed;
  double now = 0.0;
  monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 0.001), now++);
  // Sustained burn halves the effective bound toward the floor each tick.
  for (int i = 0; i < 6; ++i) {
    monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 1.0), now++);
  }
  EXPECT_EQ(engine.effective_max_queue_depth(), 4u);  // 64/2^4, floored.
  EXPECT_EQ(engine.configured_max_queue_depth(), 64u);
  EXPECT_EQ(monitor.status().adaptive_queue_depth, 4u);

  // Recovery to ok restores the configured bound.
  for (int i = 0; i < 20 && monitor.health() != HealthState::kOk; ++i) {
    monitor.TickWithSnapshotForTesting(feed.Tick(100, 0, 100, 0.001), now++);
  }
  EXPECT_EQ(monitor.health(), HealthState::kOk);
  EXPECT_EQ(engine.effective_max_queue_depth(), 64u);
  EXPECT_EQ(monitor.status().adaptive_queue_depth, 0u);
}

TEST(AdaptiveAdmissionTest, RefusedWithoutOptInOrWithoutConfiguredBound) {
  {
    EngineOptions options;
    options.max_queue_depth = 16;  // Bounded, but adaptation not opted in.
    ServingEngine engine(options);
    EXPECT_FALSE(engine.SetEffectiveMaxQueueDepth(8));
    EXPECT_EQ(engine.effective_max_queue_depth(), 16u);
  }
  {
    EngineOptions options;
    options.slo_adaptive_admission = true;  // Opted in, but unbounded queue.
    ServingEngine engine(options);
    EXPECT_FALSE(engine.SetEffectiveMaxQueueDepth(8));
    EXPECT_EQ(engine.effective_max_queue_depth(), 0u);
  }
  {
    EngineOptions options;
    options.max_queue_depth = 16;
    options.slo_adaptive_admission = true;
    ServingEngine engine(options);
    // Clamped into [1, configured]: tightening only, never loosening.
    EXPECT_TRUE(engine.SetEffectiveMaxQueueDepth(1000));
    EXPECT_EQ(engine.effective_max_queue_depth(), 16u);
    EXPECT_TRUE(engine.SetEffectiveMaxQueueDepth(0));
    EXPECT_EQ(engine.effective_max_queue_depth(), 1u);
    EXPECT_TRUE(engine.SetEffectiveMaxQueueDepth(8));
    EXPECT_EQ(engine.effective_max_queue_depth(), 8u);
  }
}

TEST(AdaptiveAdmissionTest, ShedMessageAndStatsReportEffectiveBound) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 4;
  options.slo_adaptive_admission = true;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", SmallTable(), SmallConfig()).ok());
  ASSERT_TRUE(engine.SetEffectiveMaxQueueDepth(2));

  // Hold the worker, then fill the queue past the TIGHTENED bound.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });
  std::vector<std::shared_future<SelectResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query.filters = {
        Predicate::Num("a", CmpOp::kGe, static_cast<double>(i))};
    futures.push_back(engine.SubmitSelect(request));
  }

  // Regression (the shed message used to cite the configured bound): the
  // kUnavailable message and /statusz must agree on the EFFECTIVE bound.
  const service::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.pipeline.max_queue_depth_effective, 2u);
  EXPECT_EQ(stats.pipeline.max_queue_depth_configured, 4u);
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"max_queue_depth_effective\":2"), std::string::npos);
  EXPECT_NE(json.find("\"max_queue_depth_configured\":4"), std::string::npos);

  gate.set_value();
  engine.Drain();
  size_t shed = 0;
  for (auto& future : futures) {
    const SelectResponse response = future.get();
    if (response.status.code() != StatusCode::kUnavailable) continue;
    ++shed;
    EXPECT_NE(response.status.message().find("effective bound (2)"),
              std::string::npos)
        << response.status.message();
  }
  EXPECT_GT(shed, 0u);
}

// ------------------------------------------------------------ AdminServer --

/// Minimal blocking HTTP/1.0 client for the e2e test: one request, read to
/// EOF.
std::string HttpGet(uint16_t port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  SUBTAB_CHECK(fd >= 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  SUBTAB_CHECK(::send(fd, request.data(), request.size(), 0) ==
               static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

int StatusCodeOf(const std::string& response) {
  if (response.rfind("HTTP/1.0 ", 0) != 0) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(AdminServerTest, ServesAllEndpointsAndHealthzFlipsUnderShedding) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", SmallTable(), SmallConfig()).ok());
  for (int i = 0; i < 3; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query.filters = {
        Predicate::Num("a", CmpOp::kGe, static_cast<double>(i))};
    EXPECT_TRUE(engine.Select(request).status.ok());
  }

  // Monitor driven by hand (real snapshots, synthetic clock) so the flip is
  // deterministic; the ticker thread is simply never started.
  SloOptions slo;
  slo.short_window_seconds = 1.0;
  slo.long_window_seconds = 2.0;
  slo.shed_rate_objective = 0.01;
  slo.latency_p95_objective_seconds = 1e9;  // Only the shed SLO matters here.
  slo.recovery_ticks = 1;
  SloMonitor monitor(&engine, slo);
  AdminServer server(&engine, &monitor);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // --- The endpoint catalog. ---
  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_EQ(StatusCodeOf(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  // The body is a conformant exposition of the live registry (monitor
  // gauges included), non-empty.
  engine.Stats();
  const MetricsSnapshot snap = engine.metrics().Snapshot();
  CheckExposition(snap, ops::RenderPrometheus(snap));
  EXPECT_NE(BodyOf(metrics).find("subtab_engine_requests_submitted"),
            std::string::npos);

  const std::string statusz = HttpGet(server.port(), "/statusz");
  EXPECT_EQ(StatusCodeOf(statusz), 200);
  EXPECT_NE(statusz.find("\"engine\":{"), std::string::npos);
  EXPECT_NE(statusz.find("\"slo\":{"), std::string::npos);
  EXPECT_NE(statusz.find("\"admission\":{"), std::string::npos);
  EXPECT_NE(statusz.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(statusz.find("\"build\":{"), std::string::npos);

  const std::string traces = HttpGet(server.port(), "/traces?n=2");
  EXPECT_EQ(StatusCodeOf(traces), 200);
  const std::string traces_body = BodyOf(traces);
  EXPECT_FALSE(traces_body.empty());
  EXPECT_EQ(traces_body[0], '{');  // JSONL: every line one trace object.
  EXPECT_EQ(std::count(traces_body.begin(), traces_body.end(), '\n'), 2);

  EXPECT_EQ(StatusCodeOf(HttpGet(server.port(), "/readyz")), 200);
  const std::string healthz = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(StatusCodeOf(healthz), 200);
  EXPECT_NE(healthz.find("ok"), std::string::npos);
  EXPECT_EQ(StatusCodeOf(HttpGet(server.port(), "/nope")), 404);
  EXPECT_EQ(StatusCodeOf(HttpGet(server.port(), "/metricsextra")), 404);

  // --- Induce shedding, tick the monitor, watch /healthz flip. ---
  double now = 0.0;
  engine.Stats();
  monitor.TickWithSnapshotForTesting(engine.metrics().Snapshot(), now++);
  {
    std::promise<void> gate;
    std::shared_future<void> opened = gate.get_future().share();
    engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });
    std::vector<std::shared_future<SelectResponse>> futures;
    for (int i = 0; i < 30; ++i) {
      SelectRequest request;
      request.table_id = "t";
      request.query.filters = {
          Predicate::Num("b", CmpOp::kLe, static_cast<double>(i) * 0.1)};
      futures.push_back(engine.SubmitSelect(request));
    }
    gate.set_value();
    engine.Drain();
    size_t shed = 0;
    for (auto& future : futures) {
      if (future.get().status.code() == StatusCode::kUnavailable) ++shed;
    }
    ASSERT_GT(shed, 0u) << "no overload induced, nothing to monitor";
  }
  engine.Stats();
  monitor.TickWithSnapshotForTesting(engine.metrics().Snapshot(), now++);
  EXPECT_EQ(monitor.health(), HealthState::kDegraded);
  const std::string degraded = HttpGet(server.port(), "/healthz");
  EXPECT_EQ(StatusCodeOf(degraded), 503);
  EXPECT_NE(degraded.find("degraded"), std::string::npos);
  // The flip is visible as slo.* gauges on the same scrape.
  const std::string burning = BodyOf(HttpGet(server.port(), "/metrics"));
  EXPECT_NE(burning.find("subtab_slo_health 1"), std::string::npos);
  EXPECT_NE(burning.find("subtab_slo_burn_shed_short"), std::string::npos);

  // --- Clean ticks recover it. ---
  for (int i = 0; i < 10 && monitor.health() != HealthState::kOk; ++i) {
    engine.Stats();
    monitor.TickWithSnapshotForTesting(engine.metrics().Snapshot(), now++);
  }
  EXPECT_EQ(monitor.health(), HealthState::kOk);
  EXPECT_EQ(StatusCodeOf(HttpGet(server.port(), "/healthz")), 200);

  server.Stop();
  EXPECT_FALSE(server.running());
  // Stopped: connections are refused (empty response from our client).
  EXPECT_EQ(HttpGet(server.port(), "/healthz"), "");
}

TEST(AdminServerTest, RoutingWithoutSockets) {
  ServingEngine engine;
  AdminServer server(&engine);  // No monitor: /healthz is unconditionally ok.
  EXPECT_EQ(StatusCodeOf(server.HandleRequest("GET", "/healthz")), 200);
  EXPECT_EQ(StatusCodeOf(server.HandleRequest("POST", "/metrics")), 405);
  EXPECT_EQ(StatusCodeOf(server.HandleRequest("GET", "/")), 404);
  const std::string metrics = server.HandleRequest("GET", "/metrics");
  EXPECT_EQ(StatusCodeOf(metrics), 200);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
}

}  // namespace
}  // namespace subtab
