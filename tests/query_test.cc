// Unit tests for the SP query engine and group-by aggregates, including the
// differential suite for the chunk-parallel scan (ResolveQueryScope must be
// bit-identical across thread counts and chunk layouts).

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "subtab/table/query.h"

namespace subtab {
namespace {

Table FlightsMini() {
  Column airline = Column::Categorical(
      "airline", {"AA", "DL", "AA", "UA", "DL", ""});
  Column delay = Column::Numeric(
      "delay", {5.0, -2.0, std::nan(""), 30.0, 12.0, 0.0});
  Column distance = Column::Numeric(
      "distance", {100, 900, 300, 2500, 900, 450});
  Result<Table> t =
      Table::Make({std::move(airline), std::move(delay), std::move(distance)});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(PredicateTest, ToStringFormats) {
  EXPECT_EQ(Predicate::Num("d", CmpOp::kLe, 3.5).ToString(), "d <= 3.5");
  EXPECT_EQ(Predicate::Str("a", CmpOp::kEq, "AA").ToString(), "a == 'AA'");
  EXPECT_EQ(Predicate::IsNull("x").ToString(), "x is null");
}

TEST(QueryTest, NoFiltersReturnsAll) {
  Table t = FlightsMini();
  Result<QueryResult> r = RunQuery(t, SpQuery{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 6u);
  EXPECT_EQ(r->col_ids, (std::vector<size_t>{0, 1, 2}));
}

TEST(QueryTest, NumericComparisons) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Num("delay", CmpOp::kGt, 0.0)};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  // Rows 0 (5.0), 3 (30.0), 4 (12.0); NaN row 2 excluded.
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{0, 3, 4}));
}

TEST(QueryTest, EachNumericOperator) {
  Table t = FlightsMini();
  auto count = [&t](CmpOp op, double v) {
    SpQuery q;
    q.filters = {Predicate::Num("distance", op, v)};
    Result<QueryResult> r = RunQuery(t, q);
    EXPECT_TRUE(r.ok());
    return r->row_ids.size();
  };
  EXPECT_EQ(count(CmpOp::kEq, 900), 2u);
  EXPECT_EQ(count(CmpOp::kNe, 900), 4u);
  EXPECT_EQ(count(CmpOp::kLt, 450), 2u);
  EXPECT_EQ(count(CmpOp::kLe, 450), 3u);
  EXPECT_EQ(count(CmpOp::kGt, 900), 1u);
  EXPECT_EQ(count(CmpOp::kGe, 900), 3u);
}

TEST(QueryTest, StringEquality) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Str("airline", CmpOp::kEq, "AA")};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{0, 2}));
}

TEST(QueryTest, NullPredicates) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::IsNull("delay")};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{2}));

  q.filters = {Predicate::NotNull("airline")};
  r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 5u);
}

TEST(QueryTest, ConjunctionOfFilters) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Str("airline", CmpOp::kEq, "DL"),
               Predicate::Num("distance", CmpOp::kEq, 900)};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{1, 4}));
}

TEST(QueryTest, ProjectionMapsColumnIds) {
  Table t = FlightsMini();
  SpQuery q;
  q.projection = {"distance", "airline"};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col_ids, (std::vector<size_t>{2, 0}));
  EXPECT_EQ(r->table.column(0).name(), "distance");
}

TEST(QueryTest, SortAscendingNullsLast) {
  Table t = FlightsMini();
  SpQuery q;
  q.order_by = "delay";
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{1, 5, 0, 4, 3, 2}));
}

TEST(QueryTest, SortDescending) {
  Table t = FlightsMini();
  SpQuery q;
  q.order_by = "delay";
  q.descending = true;
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.front(), 2u);  // Reversed order puts the null first.
  EXPECT_EQ(r->row_ids[1], 3u);
}

TEST(QueryTest, SortByStringColumn) {
  Table t = FlightsMini();
  SpQuery q;
  q.order_by = "airline";
  q.filters = {Predicate::NotNull("airline")};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.column("airline").cat_value(0), "AA");
  EXPECT_EQ(r->table.column("airline").cat_value(4), "UA");
}

TEST(QueryTest, LimitTruncates) {
  Table t = FlightsMini();
  SpQuery q;
  q.limit = 2;
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 2u);
}

TEST(QueryTest, UnknownColumnErrors) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Num("nope", CmpOp::kEq, 1)};
  EXPECT_FALSE(RunQuery(t, q).ok());
  q = SpQuery{};
  q.projection = {"nope"};
  EXPECT_FALSE(RunQuery(t, q).ok());
  q = SpQuery{};
  q.order_by = "nope";
  EXPECT_FALSE(RunQuery(t, q).ok());
}

TEST(QueryTest, TypeMismatchErrors) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Str("delay", CmpOp::kEq, "x")};
  Result<QueryResult> r = RunQuery(t, q);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ToStringReadable) {
  SpQuery q;
  q.filters = {Predicate::Num("delay", CmpOp::kGe, 10)};
  q.projection = {"a", "b"};
  q.order_by = "delay";
  q.limit = 5;
  const std::string s = q.ToString();
  EXPECT_NE(s.find("SELECT a, b"), std::string::npos);
  EXPECT_NE(s.find("WHERE delay >= 10"), std::string::npos);
  EXPECT_NE(s.find("ORDER BY delay ASC"), std::string::npos);
  EXPECT_NE(s.find("LIMIT 5"), std::string::npos);
}

// ---------------------------------------------------------------- GroupBy --

TEST(GroupByTest, CountPerKey) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "airline";
  g.fn = AggFn::kCount;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  // Keys in deterministic (sorted) order: AA, DL, UA; null key skipped.
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->column(0).cat_value(0), "AA");
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 2.0);
}

TEST(GroupByTest, MeanSkipsNullAggregates) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "airline";
  g.agg_column = "delay";
  g.fn = AggFn::kMean;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  // AA rows: delay 5.0 and NaN -> mean 5.0 over one value.
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 5.0);
}

TEST(GroupByTest, MinMaxSum) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "airline";
  g.agg_column = "distance";
  g.fn = AggFn::kMin;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 100.0);  // AA: min(100, 300).

  g.fn = AggFn::kMax;
  r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 300.0);

  g.fn = AggFn::kSum;
  r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 400.0);
}

TEST(GroupByTest, NumericKeyStaysNumeric) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "distance";
  g.fn = AggFn::kCount;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).type(), ColumnType::kNumeric);
}

TEST(GroupByTest, NonNumericAggregateErrors) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "distance";
  g.agg_column = "airline";
  g.fn = AggFn::kMean;
  EXPECT_FALSE(RunGroupBy(t, g).ok());
}

TEST(GroupByTest, UnknownColumnsError) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "nope";
  EXPECT_FALSE(RunGroupBy(t, g).ok());
}

// --------------------------------------------------- Parallel chunk scans --

/// A randomized table with nulls in both column types, rechunked into small
/// chunks so multi-chunk sharding actually engages.
Table RandomChunkedTable(size_t rows, size_t max_chunk_rows, std::mt19937* rng) {
  std::uniform_real_distribution<double> num(-50.0, 50.0);
  std::uniform_int_distribution<int> cat(0, 5);
  std::uniform_int_distribution<int> coin(0, 9);
  std::vector<double> a, b;
  std::vector<std::string> c;
  const char* names[] = {"red", "green", "blue", "cyan", "mag", "yel"};
  for (size_t i = 0; i < rows; ++i) {
    a.push_back(coin(*rng) == 0 ? std::nan("") : num(*rng));
    b.push_back(num(*rng));
    c.push_back(coin(*rng) == 0 ? "" : names[cat(*rng)]);
  }
  Result<Table> t = Table::Make({Column::Numeric("a", a), Column::Numeric("b", b),
                                 Column::Categorical("c", c)});
  SUBTAB_CHECK(t.ok());
  return t->Rechunked(max_chunk_rows);
}

TEST(ParallelScanTest, BitIdenticalAcrossThreadCountsAndLayouts) {
  std::mt19937 rng(20260731);
  std::vector<SpQuery> queries;
  {
    SpQuery q;  // Conjunction over both types.
    q.filters = {Predicate::Num("a", CmpOp::kGe, -10.0),
                 Predicate::Str("c", CmpOp::kEq, "green")};
    queries.push_back(q);
  }
  {
    SpQuery q;  // Null-sensitive + order + limit + projection.
    q.filters = {Predicate::NotNull("a"), Predicate::Num("b", CmpOp::kLt, 25.0)};
    q.order_by = "b";
    q.descending = true;
    q.limit = 17;
    q.projection = {"c", "a"};
    queries.push_back(q);
  }
  queries.push_back(SpQuery{});  // Unfiltered.
  {
    SpQuery q;  // Empty result.
    q.filters = {Predicate::Num("b", CmpOp::kGt, 1e9)};
    queries.push_back(q);
  }

  for (size_t chunk_rows : {size_t{0}, size_t{7}, size_t{64}}) {
    Table t = RandomChunkedTable(500, chunk_rows, &rng);
    for (const SpQuery& q : queries) {
      Result<QueryResult> serial = RunQuery(t, q);
      ASSERT_TRUE(serial.ok());
      for (size_t threads : {size_t{2}, size_t{3}, size_t{8}, size_t{0}}) {
        QueryExecOptions exec;
        exec.num_threads = threads;
        exec.min_parallel_rows = 1;  // Force the sharded path.
        Result<QueryScope> scope = ResolveQueryScope(t, q, exec);
        ASSERT_TRUE(scope.ok());
        EXPECT_EQ(scope->row_ids, serial->row_ids)
            << "chunk_rows=" << chunk_rows << " threads=" << threads;
        EXPECT_EQ(scope->col_ids, serial->col_ids);
        Result<QueryResult> parallel = RunQuery(t, q, exec);
        ASSERT_TRUE(parallel.ok());
        EXPECT_EQ(parallel->row_ids, serial->row_ids);
        EXPECT_EQ(parallel->table.ToString(99), serial->table.ToString(99));
      }
    }
  }
}

TEST(ParallelScanTest, SingleChunkTableShardsIntoNumShards) {
  // Regression: a 1-chunk 100k-row table must fan out into num_shards
  // row-balanced shards (the even-split fallback), and stay bit-identical
  // to the serial scan.
  const size_t n = 100000;
  std::vector<double> a;
  a.reserve(n);
  for (size_t i = 0; i < n; ++i) a.push_back(static_cast<double>(i % 997));
  Result<Table> t = Table::Make({Column::Numeric("a", a)});
  ASSERT_TRUE(t.ok());
  ASSERT_EQ(t->column(size_t{0}).chunks().size(), 1u);

  SpQuery q;
  q.filters = {Predicate::Num("a", CmpOp::kLt, 500.0)};
  const size_t num_shards = 8;
  Result<std::vector<size_t>> bounds =
      ScanShardBoundariesForQuery(*t, q, num_shards);
  ASSERT_TRUE(bounds.ok());
  ASSERT_EQ(bounds->size(), num_shards + 1);  // Exactly num_shards groups.
  EXPECT_EQ(bounds->front(), 0u);
  EXPECT_EQ(bounds->back(), n);
  const size_t target = (n + num_shards - 1) / num_shards;
  for (size_t i = 1; i < bounds->size(); ++i) {
    EXPECT_GT((*bounds)[i], (*bounds)[i - 1]);
    EXPECT_LE((*bounds)[i] - (*bounds)[i - 1], target);
  }

  Result<QueryScope> serial = ResolveQueryScope(*t, q);
  QueryExecOptions exec;
  exec.num_threads = num_shards;
  exec.min_parallel_rows = 1;
  Result<QueryScope> parallel = ResolveQueryScope(*t, q, exec);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(parallel->row_ids, serial->row_ids);
  EXPECT_EQ(parallel->col_ids, serial->col_ids);
}

TEST(ParallelScanTest, DominantChunkIsSubdividedNotSerial) {
  // Regression for the merge-only degeneration: chunk-edge coalescing could
  // never SPLIT a group, so one dominant sealed chunk collapsed the scan to
  // ~serial. A 60k+40k chunk layout at 8 shards used to produce 2 groups;
  // subdivision must restore >= num_shards groups, none wider than the
  // row-balanced target.
  const size_t n = 100000;
  std::vector<double> a;
  a.reserve(n);
  for (size_t i = 0; i < n; ++i) a.push_back(static_cast<double>(i % 811));
  Result<Table> made = Table::Make({Column::Numeric("a", a)});
  ASSERT_TRUE(made.ok());
  Table t = made->Rechunked(60000);  // Chunks: 60000 + 40000 rows.
  ASSERT_GE(t.column(size_t{0}).chunks().size(), 2u);

  SpQuery q;
  q.filters = {Predicate::Num("a", CmpOp::kGe, 100.0)};
  const size_t num_shards = 8;
  Result<std::vector<size_t>> bounds =
      ScanShardBoundariesForQuery(t, q, num_shards);
  ASSERT_TRUE(bounds.ok());
  const size_t target = (n + num_shards - 1) / num_shards;
  EXPECT_GE(bounds->size(), num_shards + 1);
  EXPECT_EQ(bounds->front(), 0u);
  EXPECT_EQ(bounds->back(), n);
  for (size_t i = 1; i < bounds->size(); ++i) {
    EXPECT_GT((*bounds)[i], (*bounds)[i - 1]);
    EXPECT_LE((*bounds)[i] - (*bounds)[i - 1], target);
  }

  Result<QueryScope> serial = ResolveQueryScope(t, q);
  QueryExecOptions exec;
  exec.num_threads = num_shards;
  exec.min_parallel_rows = 1;
  Result<QueryScope> parallel = ResolveQueryScope(t, q, exec);
  ASSERT_TRUE(serial.ok() && parallel.ok());
  EXPECT_EQ(parallel->row_ids, serial->row_ids);
}

TEST(ParallelScanTest, ScopeMatchesRunQueryProvenance) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Num("distance", CmpOp::kGe, 400.0)};
  q.projection = {"airline", "distance"};
  Result<QueryScope> scope = ResolveQueryScope(t, q);
  Result<QueryResult> full = RunQuery(t, q);
  ASSERT_TRUE(scope.ok() && full.ok());
  EXPECT_EQ(scope->row_ids, full->row_ids);
  EXPECT_EQ(scope->col_ids, full->col_ids);
}

TEST(ParallelScanTest, ErrorsMatchSerialErrors) {
  Table t = FlightsMini();
  QueryExecOptions exec;
  exec.num_threads = 4;
  exec.min_parallel_rows = 1;
  SpQuery unknown;
  unknown.filters = {Predicate::Num("nope", CmpOp::kGe, 0.0)};
  EXPECT_FALSE(ResolveQueryScope(t, unknown, exec).ok());
  SpQuery mismatch;
  mismatch.filters = {Predicate::Str("distance", CmpOp::kEq, "x")};
  EXPECT_FALSE(ResolveQueryScope(t, mismatch, exec).ok());
}

// ------------------------------------------------- Containment reasoning --

SpQuery Where(std::vector<Predicate> filters) {
  SpQuery q;
  q.filters = std::move(filters);
  return q;
}

TEST(QueryContainsTest, IntervalSubsumption) {
  const SpQuery broad = Where({Predicate::Num("a", CmpOp::kGe, 1.0)});
  const SpQuery narrow = Where({Predicate::Num("a", CmpOp::kGe, 5.0)});
  EXPECT_TRUE(QueryContains(broad, narrow));
  EXPECT_FALSE(QueryContains(narrow, broad));
  EXPECT_TRUE(QueryContains(broad, broad));  // Reflexive.

  // Strictness: x > 1 is narrower than x >= 1, not vice versa.
  const SpQuery strict = Where({Predicate::Num("a", CmpOp::kGt, 1.0)});
  EXPECT_TRUE(QueryContains(broad, strict));
  EXPECT_FALSE(QueryContains(strict, broad));

  // Two-sided: [0, 10] contains [2, 8] but not [2, 12].
  const SpQuery wide = Where({Predicate::Num("a", CmpOp::kGe, 0.0),
                              Predicate::Num("a", CmpOp::kLe, 10.0)});
  EXPECT_TRUE(QueryContains(wide, Where({Predicate::Num("a", CmpOp::kGe, 2.0),
                                         Predicate::Num("a", CmpOp::kLe, 8.0)})));
  EXPECT_FALSE(QueryContains(wide, Where({Predicate::Num("a", CmpOp::kGe, 2.0),
                                          Predicate::Num("a", CmpOp::kLe, 12.0)})));

  // An equality pins the column inside (or outside) an interval.
  EXPECT_TRUE(QueryContains(broad, Where({Predicate::Num("a", CmpOp::kEq, 3.0)})));
  EXPECT_FALSE(QueryContains(broad, Where({Predicate::Num("a", CmpOp::kEq, 0.0)})));
}

TEST(QueryContainsTest, ConjunctionAndDisjointColumns) {
  // Adding conjuncts narrows: parent's conjuncts must each be implied.
  const SpQuery parent = Where({Predicate::Num("a", CmpOp::kGe, 1.0)});
  const SpQuery child = Where({Predicate::Num("a", CmpOp::kGe, 1.0),
                               Predicate::Str("c", CmpOp::kEq, "x")});
  EXPECT_TRUE(QueryContains(parent, child));
  EXPECT_FALSE(QueryContains(child, parent));
  // A constraint on a column the child never touches cannot be implied.
  EXPECT_FALSE(QueryContains(Where({Predicate::Num("b", CmpOp::kGe, 0.0)}),
                             child));
  // The whole table contains everything.
  EXPECT_TRUE(QueryContains(SpQuery{}, child));
  EXPECT_FALSE(QueryContains(child, SpQuery{}));
}

TEST(QueryContainsTest, NullStateReasoning) {
  // Any value comparison implies NOT NULL (nulls fail all comparisons)...
  EXPECT_TRUE(QueryContains(Where({Predicate::NotNull("a")}),
                            Where({Predicate::Num("a", CmpOp::kNe, 3.0)})));
  EXPECT_TRUE(QueryContains(Where({Predicate::NotNull("c")}),
                            Where({Predicate::Str("c", CmpOp::kEq, "x")})));
  // ...while IS NULL is implied only by itself.
  EXPECT_TRUE(QueryContains(Where({Predicate::IsNull("a")}),
                            Where({Predicate::IsNull("a")})));
  EXPECT_FALSE(QueryContains(Where({Predicate::IsNull("a")}),
                             Where({Predicate::Num("a", CmpOp::kEq, 3.0)})));
}

TEST(QueryContainsTest, InequalityReasoning) {
  // x != 5 is implied by an equality elsewhere, by the same inequality, and
  // by an interval excluding 5.
  const SpQuery ne5 = Where({Predicate::Num("a", CmpOp::kNe, 5.0)});
  EXPECT_TRUE(QueryContains(ne5, Where({Predicate::Num("a", CmpOp::kEq, 7.0)})));
  EXPECT_TRUE(QueryContains(ne5, ne5));
  EXPECT_TRUE(QueryContains(ne5, Where({Predicate::Num("a", CmpOp::kGt, 5.0)})));
  EXPECT_FALSE(QueryContains(ne5, Where({Predicate::Num("a", CmpOp::kGe, 5.0)})));
  // String flavor: c != 'x' implied by c == 'y'.
  EXPECT_TRUE(QueryContains(Where({Predicate::Str("c", CmpOp::kNe, "x")}),
                            Where({Predicate::Str("c", CmpOp::kEq, "y")})));
  EXPECT_FALSE(QueryContains(Where({Predicate::Str("c", CmpOp::kNe, "x")}),
                             Where({Predicate::Str("c", CmpOp::kEq, "x")})));
}

TEST(QueryContainsTest, LimitBlocksContainment) {
  // A truncated parent result proves nothing, whatever the filters say.
  SpQuery limited = Where({Predicate::Num("a", CmpOp::kGe, 1.0)});
  limited.limit = 3;
  EXPECT_FALSE(QueryContains(limited, Where({Predicate::Num("a", CmpOp::kGe, 5.0)})));
  // The child having a limit is fine: its rows only shrink further.
  SpQuery child = Where({Predicate::Num("a", CmpOp::kGe, 5.0)});
  child.limit = 3;
  child.order_by = "a";
  EXPECT_TRUE(QueryContains(Where({Predicate::Num("a", CmpOp::kGe, 1.0)}), child));
}

TEST(CanonicalConjunctsTest, MergesRedundantBounds) {
  // a >= 1 AND a >= 2  ->  a >= 2.
  std::vector<Predicate> merged = CanonicalConjuncts(
      {Predicate::Num("a", CmpOp::kGe, 1.0), Predicate::Num("a", CmpOp::kGe, 2.0)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].op, CmpOp::kGe);
  EXPECT_EQ(merged[0].num_literal, 2.0);

  // a > 2 AND a >= 2  ->  a > 2 (strict is tighter at the same value).
  merged = CanonicalConjuncts(
      {Predicate::Num("a", CmpOp::kGt, 2.0), Predicate::Num("a", CmpOp::kGe, 2.0)});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].op, CmpOp::kGt);

  // Upper bounds merge independently of lower bounds; columns independent.
  merged = CanonicalConjuncts(
      {Predicate::Num("a", CmpOp::kLe, 9.0), Predicate::Num("a", CmpOp::kLt, 4.0),
       Predicate::Num("a", CmpOp::kGe, 1.0), Predicate::Num("b", CmpOp::kLe, 7.0)});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].op, CmpOp::kLt);  // a < 4 survived, a <= 9 dropped.
  EXPECT_EQ(merged[0].num_literal, 4.0);

  // Non-bound predicates pass through untouched.
  merged = CanonicalConjuncts(
      {Predicate::Num("a", CmpOp::kEq, 3.0), Predicate::Num("a", CmpOp::kNe, 4.0),
       Predicate::Str("c", CmpOp::kEq, "x"), Predicate::IsNull("b")});
  EXPECT_EQ(merged.size(), 4u);
}

TEST(CanonicalConjunctsTest, PreservesRowSet) {
  // The merged conjunction must select exactly the same rows.
  Table t = FlightsMini();
  SpQuery redundant = Where({Predicate::Num("distance", CmpOp::kGe, 100.0),
                             Predicate::Num("distance", CmpOp::kGe, 400.0),
                             Predicate::Num("distance", CmpOp::kLe, 3000.0)});
  SpQuery canonical;
  canonical.filters = CanonicalConjuncts(redundant.filters);
  EXPECT_LT(canonical.filters.size(), redundant.filters.size());
  Result<QueryResult> a = RunQuery(t, redundant);
  Result<QueryResult> b = RunQuery(t, canonical);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->row_ids, b->row_ids);
}

/// Builds the restricted-scan inputs for (parent, child) and checks the
/// result is bit-identical to a direct full scan of the child.
void ExpectRestrictMatchesDirect(const Table& t, const SpQuery& parent,
                                 const SpQuery& child) {
  ASSERT_TRUE(QueryContains(parent, child));
  Result<QueryScope> parent_scope = ResolveQueryScope(t, parent);
  ASSERT_TRUE(parent_scope.ok());
  Result<QueryScope> direct = ResolveQueryScope(t, child);
  Result<QueryScope> restricted = RestrictQueryScope(
      t, parent_scope->row_ids, child, ExtraConjuncts(parent, child));
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->row_ids, direct->row_ids);
  EXPECT_EQ(restricted->col_ids, direct->col_ids);
}

TEST(RestrictScopeTest, MatchesDirectScanOnRefinements) {
  std::mt19937 rng(77);
  Table t = RandomChunkedTable(400, 23, &rng);
  const SpQuery parent = Where({Predicate::Num("a", CmpOp::kGe, -20.0)});

  // Pure conjunct refinement.
  ExpectRestrictMatchesDirect(
      t, parent, Where({Predicate::Num("a", CmpOp::kGe, -20.0),
                        Predicate::Num("b", CmpOp::kLt, 10.0)}));
  // Tightened bound on the same column (no literally-shared conjunct).
  ExpectRestrictMatchesDirect(t, parent,
                              Where({Predicate::Num("a", CmpOp::kGe, 0.0)}));
  // Child with projection, ordering, and limit over the restricted rows.
  SpQuery fancy = Where({Predicate::Num("a", CmpOp::kGe, -20.0),
                         Predicate::Str("c", CmpOp::kEq, "green")});
  fancy.projection = {"c", "a"};
  fancy.order_by = "a";
  fancy.descending = true;
  fancy.limit = 9;
  ExpectRestrictMatchesDirect(t, parent, fancy);
  // Identical filter set (e.g. same query, different seed): extra is empty.
  ExpectRestrictMatchesDirect(t, parent, parent);
}

TEST(RestrictScopeTest, RandomizedDrillDownChains) {
  // Randomized drill-down chains: start from a broad parent, tighten 1-3
  // times, checking every link AND every ancestor-descendant pair.
  std::mt19937 rng(20260731);
  std::uniform_real_distribution<double> delta(0.0, 30.0);
  const char* names[] = {"red", "green", "blue", "cyan", "mag", "yel"};
  for (int trial = 0; trial < 25; ++trial) {
    Table t = RandomChunkedTable(300, 1 + trial % 40, &rng);
    std::vector<SpQuery> chain;
    double lo = -40.0;
    chain.push_back(Where({Predicate::Num("a", CmpOp::kGe, lo)}));
    const size_t steps = 2 + trial % 3;
    for (size_t s = 0; s < steps; ++s) {
      SpQuery next = chain.back();
      switch (trial % 3) {
        case 0:  // Tighten the numeric bound.
          lo += delta(rng);
          next.filters[0] = Predicate::Num("a", CmpOp::kGe, lo);
          break;
        case 1:  // Add a categorical conjunct.
          next.filters.push_back(
              Predicate::Str("c", CmpOp::kEq, names[(trial + s) % 6]));
          break;
        default:  // Add an upper bound on another column.
          next.filters.push_back(
              Predicate::Num("b", CmpOp::kLe, 40.0 - delta(rng)));
          break;
      }
      chain.push_back(next);
    }
    for (size_t i = 0; i < chain.size(); ++i) {
      for (size_t j = i + 1; j < chain.size(); ++j) {
        ExpectRestrictMatchesDirect(t, chain[i], chain[j]);
      }
    }
  }
}

TEST(RestrictScopeTest, ErrorsMatchDirectScan) {
  Table t = FlightsMini();
  const SpQuery parent = Where({Predicate::Num("distance", CmpOp::kGe, 0.0)});
  Result<QueryScope> parent_scope = ResolveQueryScope(t, parent);
  ASSERT_TRUE(parent_scope.ok());
  // A type-mismatched extra conjunct errors exactly like the full scan.
  SpQuery bad = parent;
  bad.filters.push_back(Predicate::Str("distance", CmpOp::kEq, "x"));
  Result<QueryScope> direct = ResolveQueryScope(t, bad);
  Result<QueryScope> restricted = RestrictQueryScope(
      t, parent_scope->row_ids, bad, ExtraConjuncts(parent, bad));
  ASSERT_FALSE(direct.ok());
  ASSERT_FALSE(restricted.ok());
  EXPECT_EQ(restricted.status().ToString(), direct.status().ToString());
  // An unknown projection column errors identically too.
  SpQuery ghost = parent;
  ghost.projection = {"nope"};
  direct = ResolveQueryScope(t, ghost);
  restricted = RestrictQueryScope(t, parent_scope->row_ids, ghost, {});
  ASSERT_FALSE(direct.ok());
  ASSERT_FALSE(restricted.ok());
  EXPECT_EQ(restricted.status().ToString(), direct.status().ToString());
}

TEST(RestrictScopeTest, SamePredicateAndExtraConjuncts) {
  const Predicate ge1 = Predicate::Num("a", CmpOp::kGe, 1.0);
  EXPECT_TRUE(SamePredicate(ge1, Predicate::Num("a", CmpOp::kGe, 1.0)));
  EXPECT_FALSE(SamePredicate(ge1, Predicate::Num("a", CmpOp::kGt, 1.0)));
  EXPECT_FALSE(SamePredicate(ge1, Predicate::Num("b", CmpOp::kGe, 1.0)));
  EXPECT_FALSE(SamePredicate(ge1, Predicate::Num("a", CmpOp::kGe, 2.0)));
  // NaN literals compare equal by bit pattern (both match nothing).
  EXPECT_TRUE(SamePredicate(Predicate::Num("a", CmpOp::kEq, std::nan("")),
                            Predicate::Num("a", CmpOp::kEq, std::nan(""))));

  const SpQuery parent = Where({ge1, Predicate::Str("c", CmpOp::kEq, "x")});
  const SpQuery child = Where({Predicate::Str("c", CmpOp::kEq, "x"), ge1,
                               Predicate::Num("b", CmpOp::kLt, 5.0)});
  const std::vector<Predicate> extra = ExtraConjuncts(parent, child);
  ASSERT_EQ(extra.size(), 1u);
  EXPECT_EQ(extra[0].column, "b");
}

}  // namespace
}  // namespace subtab
