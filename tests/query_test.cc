// Unit tests for the SP query engine and group-by aggregates, including the
// differential suite for the chunk-parallel scan (ResolveQueryScope must be
// bit-identical across thread counts and chunk layouts).

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "subtab/table/query.h"

namespace subtab {
namespace {

Table FlightsMini() {
  Column airline = Column::Categorical(
      "airline", {"AA", "DL", "AA", "UA", "DL", ""});
  Column delay = Column::Numeric(
      "delay", {5.0, -2.0, std::nan(""), 30.0, 12.0, 0.0});
  Column distance = Column::Numeric(
      "distance", {100, 900, 300, 2500, 900, 450});
  Result<Table> t =
      Table::Make({std::move(airline), std::move(delay), std::move(distance)});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(PredicateTest, ToStringFormats) {
  EXPECT_EQ(Predicate::Num("d", CmpOp::kLe, 3.5).ToString(), "d <= 3.5");
  EXPECT_EQ(Predicate::Str("a", CmpOp::kEq, "AA").ToString(), "a == 'AA'");
  EXPECT_EQ(Predicate::IsNull("x").ToString(), "x is null");
}

TEST(QueryTest, NoFiltersReturnsAll) {
  Table t = FlightsMini();
  Result<QueryResult> r = RunQuery(t, SpQuery{});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 6u);
  EXPECT_EQ(r->col_ids, (std::vector<size_t>{0, 1, 2}));
}

TEST(QueryTest, NumericComparisons) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Num("delay", CmpOp::kGt, 0.0)};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  // Rows 0 (5.0), 3 (30.0), 4 (12.0); NaN row 2 excluded.
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{0, 3, 4}));
}

TEST(QueryTest, EachNumericOperator) {
  Table t = FlightsMini();
  auto count = [&t](CmpOp op, double v) {
    SpQuery q;
    q.filters = {Predicate::Num("distance", op, v)};
    Result<QueryResult> r = RunQuery(t, q);
    EXPECT_TRUE(r.ok());
    return r->row_ids.size();
  };
  EXPECT_EQ(count(CmpOp::kEq, 900), 2u);
  EXPECT_EQ(count(CmpOp::kNe, 900), 4u);
  EXPECT_EQ(count(CmpOp::kLt, 450), 2u);
  EXPECT_EQ(count(CmpOp::kLe, 450), 3u);
  EXPECT_EQ(count(CmpOp::kGt, 900), 1u);
  EXPECT_EQ(count(CmpOp::kGe, 900), 3u);
}

TEST(QueryTest, StringEquality) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Str("airline", CmpOp::kEq, "AA")};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{0, 2}));
}

TEST(QueryTest, NullPredicates) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::IsNull("delay")};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{2}));

  q.filters = {Predicate::NotNull("airline")};
  r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 5u);
}

TEST(QueryTest, ConjunctionOfFilters) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Str("airline", CmpOp::kEq, "DL"),
               Predicate::Num("distance", CmpOp::kEq, 900)};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{1, 4}));
}

TEST(QueryTest, ProjectionMapsColumnIds) {
  Table t = FlightsMini();
  SpQuery q;
  q.projection = {"distance", "airline"};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->col_ids, (std::vector<size_t>{2, 0}));
  EXPECT_EQ(r->table.column(0).name(), "distance");
}

TEST(QueryTest, SortAscendingNullsLast) {
  Table t = FlightsMini();
  SpQuery q;
  q.order_by = "delay";
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids, (std::vector<size_t>{1, 5, 0, 4, 3, 2}));
}

TEST(QueryTest, SortDescending) {
  Table t = FlightsMini();
  SpQuery q;
  q.order_by = "delay";
  q.descending = true;
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.front(), 2u);  // Reversed order puts the null first.
  EXPECT_EQ(r->row_ids[1], 3u);
}

TEST(QueryTest, SortByStringColumn) {
  Table t = FlightsMini();
  SpQuery q;
  q.order_by = "airline";
  q.filters = {Predicate::NotNull("airline")};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->table.column("airline").cat_value(0), "AA");
  EXPECT_EQ(r->table.column("airline").cat_value(4), "UA");
}

TEST(QueryTest, LimitTruncates) {
  Table t = FlightsMini();
  SpQuery q;
  q.limit = 2;
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 2u);
}

TEST(QueryTest, UnknownColumnErrors) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Num("nope", CmpOp::kEq, 1)};
  EXPECT_FALSE(RunQuery(t, q).ok());
  q = SpQuery{};
  q.projection = {"nope"};
  EXPECT_FALSE(RunQuery(t, q).ok());
  q = SpQuery{};
  q.order_by = "nope";
  EXPECT_FALSE(RunQuery(t, q).ok());
}

TEST(QueryTest, TypeMismatchErrors) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Str("delay", CmpOp::kEq, "x")};
  Result<QueryResult> r = RunQuery(t, q);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryTest, ToStringReadable) {
  SpQuery q;
  q.filters = {Predicate::Num("delay", CmpOp::kGe, 10)};
  q.projection = {"a", "b"};
  q.order_by = "delay";
  q.limit = 5;
  const std::string s = q.ToString();
  EXPECT_NE(s.find("SELECT a, b"), std::string::npos);
  EXPECT_NE(s.find("WHERE delay >= 10"), std::string::npos);
  EXPECT_NE(s.find("ORDER BY delay ASC"), std::string::npos);
  EXPECT_NE(s.find("LIMIT 5"), std::string::npos);
}

// ---------------------------------------------------------------- GroupBy --

TEST(GroupByTest, CountPerKey) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "airline";
  g.fn = AggFn::kCount;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  // Keys in deterministic (sorted) order: AA, DL, UA; null key skipped.
  EXPECT_EQ(r->num_rows(), 3u);
  EXPECT_EQ(r->column(0).cat_value(0), "AA");
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 2.0);
}

TEST(GroupByTest, MeanSkipsNullAggregates) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "airline";
  g.agg_column = "delay";
  g.fn = AggFn::kMean;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  // AA rows: delay 5.0 and NaN -> mean 5.0 over one value.
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 5.0);
}

TEST(GroupByTest, MinMaxSum) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "airline";
  g.agg_column = "distance";
  g.fn = AggFn::kMin;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 100.0);  // AA: min(100, 300).

  g.fn = AggFn::kMax;
  r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 300.0);

  g.fn = AggFn::kSum;
  r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->column(1).num_value(0), 400.0);
}

TEST(GroupByTest, NumericKeyStaysNumeric) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "distance";
  g.fn = AggFn::kCount;
  Result<Table> r = RunGroupBy(t, g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->column(0).type(), ColumnType::kNumeric);
}

TEST(GroupByTest, NonNumericAggregateErrors) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "distance";
  g.agg_column = "airline";
  g.fn = AggFn::kMean;
  EXPECT_FALSE(RunGroupBy(t, g).ok());
}

TEST(GroupByTest, UnknownColumnsError) {
  Table t = FlightsMini();
  GroupByQuery g;
  g.key_column = "nope";
  EXPECT_FALSE(RunGroupBy(t, g).ok());
}

// --------------------------------------------------- Parallel chunk scans --

/// A randomized table with nulls in both column types, rechunked into small
/// chunks so multi-chunk sharding actually engages.
Table RandomChunkedTable(size_t rows, size_t max_chunk_rows, std::mt19937* rng) {
  std::uniform_real_distribution<double> num(-50.0, 50.0);
  std::uniform_int_distribution<int> cat(0, 5);
  std::uniform_int_distribution<int> coin(0, 9);
  std::vector<double> a, b;
  std::vector<std::string> c;
  const char* names[] = {"red", "green", "blue", "cyan", "mag", "yel"};
  for (size_t i = 0; i < rows; ++i) {
    a.push_back(coin(*rng) == 0 ? std::nan("") : num(*rng));
    b.push_back(num(*rng));
    c.push_back(coin(*rng) == 0 ? "" : names[cat(*rng)]);
  }
  Result<Table> t = Table::Make({Column::Numeric("a", a), Column::Numeric("b", b),
                                 Column::Categorical("c", c)});
  SUBTAB_CHECK(t.ok());
  return t->Rechunked(max_chunk_rows);
}

TEST(ParallelScanTest, BitIdenticalAcrossThreadCountsAndLayouts) {
  std::mt19937 rng(20260731);
  std::vector<SpQuery> queries;
  {
    SpQuery q;  // Conjunction over both types.
    q.filters = {Predicate::Num("a", CmpOp::kGe, -10.0),
                 Predicate::Str("c", CmpOp::kEq, "green")};
    queries.push_back(q);
  }
  {
    SpQuery q;  // Null-sensitive + order + limit + projection.
    q.filters = {Predicate::NotNull("a"), Predicate::Num("b", CmpOp::kLt, 25.0)};
    q.order_by = "b";
    q.descending = true;
    q.limit = 17;
    q.projection = {"c", "a"};
    queries.push_back(q);
  }
  queries.push_back(SpQuery{});  // Unfiltered.
  {
    SpQuery q;  // Empty result.
    q.filters = {Predicate::Num("b", CmpOp::kGt, 1e9)};
    queries.push_back(q);
  }

  for (size_t chunk_rows : {size_t{0}, size_t{7}, size_t{64}}) {
    Table t = RandomChunkedTable(500, chunk_rows, &rng);
    for (const SpQuery& q : queries) {
      Result<QueryResult> serial = RunQuery(t, q);
      ASSERT_TRUE(serial.ok());
      for (size_t threads : {size_t{2}, size_t{3}, size_t{8}, size_t{0}}) {
        QueryExecOptions exec;
        exec.num_threads = threads;
        exec.min_parallel_rows = 1;  // Force the sharded path.
        Result<QueryScope> scope = ResolveQueryScope(t, q, exec);
        ASSERT_TRUE(scope.ok());
        EXPECT_EQ(scope->row_ids, serial->row_ids)
            << "chunk_rows=" << chunk_rows << " threads=" << threads;
        EXPECT_EQ(scope->col_ids, serial->col_ids);
        Result<QueryResult> parallel = RunQuery(t, q, exec);
        ASSERT_TRUE(parallel.ok());
        EXPECT_EQ(parallel->row_ids, serial->row_ids);
        EXPECT_EQ(parallel->table.ToString(99), serial->table.ToString(99));
      }
    }
  }
}

TEST(ParallelScanTest, ScopeMatchesRunQueryProvenance) {
  Table t = FlightsMini();
  SpQuery q;
  q.filters = {Predicate::Num("distance", CmpOp::kGe, 400.0)};
  q.projection = {"airline", "distance"};
  Result<QueryScope> scope = ResolveQueryScope(t, q);
  Result<QueryResult> full = RunQuery(t, q);
  ASSERT_TRUE(scope.ok() && full.ok());
  EXPECT_EQ(scope->row_ids, full->row_ids);
  EXPECT_EQ(scope->col_ids, full->col_ids);
}

TEST(ParallelScanTest, ErrorsMatchSerialErrors) {
  Table t = FlightsMini();
  QueryExecOptions exec;
  exec.num_threads = 4;
  exec.min_parallel_rows = 1;
  SpQuery unknown;
  unknown.filters = {Predicate::Num("nope", CmpOp::kGe, 0.0)};
  EXPECT_FALSE(ResolveQueryScope(t, unknown, exec).ok());
  SpQuery mismatch;
  mismatch.filters = {Predicate::Str("distance", CmpOp::kEq, "x")};
  EXPECT_FALSE(ResolveQueryScope(t, mismatch, exec).ok());
}

}  // namespace
}  // namespace subtab
