// Reference-model property tests: the optimized CoverageEvaluator (class
// deduplication, tid bitsets, incremental accumulator) is validated against
// a deliberately naive reimplementation of Def. 3.6 on random instances, and
// the greedy accumulator against whole-set re-evaluation. These tests pin
// the exact semantics of the paper's metric.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "subtab/baselines/greedy.h"
#include "subtab/metrics/combined.h"
#include "subtab/rules/miner.h"
#include "subtab/util/rng.h"

namespace subtab {
namespace {

/// Straight-from-the-definition cell coverage: enumerate rules, check
/// coverage (d1), collect described cells (d2) into a set, count (d3).
size_t NaiveCoveredCells(const BinnedTable& binned, const RuleSet& rules,
                         const std::vector<size_t>& row_ids,
                         const std::vector<size_t>& col_ids) {
  std::set<std::pair<size_t, uint32_t>> cells;
  const std::set<size_t> col_set(col_ids.begin(), col_ids.end());
  for (const Rule& rule : rules.rules) {
    // (d1) covered: U_R ⊆ U_sub and some selected tuple satisfies R.
    bool cols_ok = true;
    for (uint32_t c : rule.Columns()) {
      if (col_set.find(c) == col_set.end()) {
        cols_ok = false;
        break;
      }
    }
    if (!cols_ok) continue;
    bool any_row = false;
    for (size_t r : row_ids) {
      if (rule.HoldsForRow(binned, r)) {
        any_row = true;
        break;
      }
    }
    if (!any_row) continue;
    // (d2) cell(R,T) = T_R x U_R.
    for (size_t r = 0; r < binned.num_rows(); ++r) {
      if (!rule.HoldsForRow(binned, r)) continue;
      for (uint32_t c : rule.Columns()) cells.insert({r, c});
    }
  }
  return cells.size();
}

size_t NaiveUpcov(const BinnedTable& binned, const RuleSet& rules) {
  std::set<std::pair<size_t, uint32_t>> cells;
  for (const Rule& rule : rules.rules) {
    for (size_t r = 0; r < binned.num_rows(); ++r) {
      if (!rule.HoldsForRow(binned, r)) continue;
      for (uint32_t c : rule.Columns()) cells.insert({r, c});
    }
  }
  return cells.size();
}

/// Straight-from-the-definition diversity (Def. 3.7).
double NaiveDiversity(const BinnedTable& binned, const std::vector<size_t>& rows,
                      const std::vector<size_t>& cols) {
  if (rows.size() < 2) return 1.0;
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      size_t same = 0;
      for (size_t c : cols) {
        if (binned.token(rows[i], c) == binned.token(rows[j], c)) ++same;
      }
      total += static_cast<double>(same) / static_cast<double>(cols.size());
      ++pairs;
    }
  }
  return 1.0 - total / static_cast<double>(pairs);
}

struct Instance {
  Table table;
  BinnedTable binned;
  RuleSet rules;
};

Instance RandomInstance(uint64_t seed) {
  Rng rng(seed);
  const size_t n = 15 + rng.Uniform(25);
  const size_t m = 4 + rng.Uniform(3);
  std::vector<Column> cols;
  for (size_t c = 0; c < m; ++c) {
    std::vector<std::string> values;
    for (size_t r = 0; r < n; ++r) {
      // Skewed alphabet so rules actually exist.
      const char v = rng.Bernoulli(0.5) ? 'a' : static_cast<char>('a' + rng.Uniform(3));
      values.push_back(std::string(1, v));
    }
    cols.push_back(Column::Categorical("c" + std::to_string(c), values));
  }
  Result<Table> t = Table::Make(std::move(cols));
  SUBTAB_CHECK(t.ok());
  Instance inst{std::move(t).value(), {}, {}};
  inst.binned = BinnedTable::Compute(inst.table);
  RuleMiningOptions mining;
  mining.apriori.min_support = 0.2;
  mining.min_confidence = 0.3;
  mining.min_rule_size = 2;
  inst.rules = MineRules(inst.binned, mining);
  return inst;
}

class ReferenceModelTest : public ::testing::TestWithParam<int> {};

TEST_P(ReferenceModelTest, UpcovMatchesNaive) {
  Instance inst = RandomInstance(500 + static_cast<uint64_t>(GetParam()));
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  EXPECT_EQ(evaluator.upcov(), NaiveUpcov(inst.binned, inst.rules));
}

TEST_P(ReferenceModelTest, CoveredCellsMatchNaiveOnRandomSelections) {
  Instance inst = RandomInstance(600 + static_cast<uint64_t>(GetParam()));
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  Rng rng(1 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const size_t k = 1 + rng.Uniform(5);
    const size_t l = 1 + rng.Uniform(inst.binned.num_columns());
    std::vector<size_t> rows = rng.SampleWithoutReplacement(inst.binned.num_rows(), k);
    std::vector<size_t> cols =
        rng.SampleWithoutReplacement(inst.binned.num_columns(), l);
    EXPECT_EQ(evaluator.CoveredCellCount(rows, cols),
              NaiveCoveredCells(inst.binned, inst.rules, rows, cols));
  }
}

TEST_P(ReferenceModelTest, DiversityMatchesNaive) {
  Instance inst = RandomInstance(700 + static_cast<uint64_t>(GetParam()));
  Rng rng(2 + static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 8; ++trial) {
    const size_t k = 1 + rng.Uniform(6);
    const size_t l = 1 + rng.Uniform(inst.binned.num_columns());
    std::vector<size_t> rows = rng.SampleWithoutReplacement(inst.binned.num_rows(), k);
    std::vector<size_t> cols =
        rng.SampleWithoutReplacement(inst.binned.num_columns(), l);
    EXPECT_NEAR(Diversity(inst.binned, rows, cols),
                NaiveDiversity(inst.binned, rows, cols), 1e-12);
  }
}

TEST_P(ReferenceModelTest, AccumulatorMatchesBatchOnGreedyTrace) {
  // Replaying greedy row selection step by step, the incremental accumulator
  // must agree with from-scratch evaluation after every insertion.
  Instance inst = RandomInstance(800 + static_cast<uint64_t>(GetParam()));
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  std::vector<size_t> cols;
  for (size_t c = 0; c < inst.binned.num_columns(); ++c) cols.push_back(c);
  CoverageAccumulator acc(evaluator, cols);
  std::vector<size_t> chosen;
  for (int step = 0; step < 5; ++step) {
    size_t best_row = inst.binned.num_rows();
    size_t best_gain = 0;
    for (size_t r = 0; r < inst.binned.num_rows(); ++r) {
      if (std::find(chosen.begin(), chosen.end(), r) != chosen.end()) continue;
      const size_t gain = acc.GainOfRow(r);
      if (best_row == inst.binned.num_rows() || gain > best_gain) {
        best_gain = gain;
        best_row = r;
      }
    }
    acc.AddRow(best_row);
    chosen.push_back(best_row);
    EXPECT_EQ(acc.covered_cells(), evaluator.CoveredCellCount(chosen, cols));
    EXPECT_EQ(acc.covered_cells(),
              NaiveCoveredCells(inst.binned, inst.rules, chosen, cols));
  }
}

TEST_P(ReferenceModelTest, CombinedScoreIsConvexCombination) {
  Instance inst = RandomInstance(900 + static_cast<uint64_t>(GetParam()));
  CoverageEvaluator evaluator(inst.binned, inst.rules);
  Rng rng(3 + static_cast<uint64_t>(GetParam()));
  std::vector<size_t> rows = rng.SampleWithoutReplacement(inst.binned.num_rows(), 3);
  std::vector<size_t> cols =
      rng.SampleWithoutReplacement(inst.binned.num_columns(), 3);
  for (double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const SubTableScore s = ScoreSubTable(evaluator, rows, cols, alpha);
    EXPECT_NEAR(s.combined, alpha * s.cell_coverage + (1 - alpha) * s.diversity,
                1e-12);
    EXPECT_GE(s.cell_coverage, 0.0);
    EXPECT_LE(s.cell_coverage, 1.0 + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceModelTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace subtab
