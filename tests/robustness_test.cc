// Robustness tests: degenerate and pathological inputs through the whole
// pipeline — all-null columns, constant tables, single rows/columns,
// extreme values, k/l larger than the table — must not crash and must
// produce well-formed results.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "subtab/baselines/brute_force.h"
#include "subtab/baselines/random_baseline.h"
#include "subtab/core/subtab.h"
#include "subtab/rules/miner.h"

namespace subtab {
namespace {

SubTabConfig TinyConfig() {
  SubTabConfig config;
  config.k = 3;
  config.l = 2;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.embedding.num_threads = 1;
  return config;
}

Table MakeAllNullTable(size_t n) {
  Column a("a", ColumnType::kNumeric);
  Column b("b", ColumnType::kCategorical);
  for (size_t i = 0; i < n; ++i) {
    a.AppendNull();
    b.AppendNull();
  }
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  SUBTAB_CHECK(t.ok());
  return std::move(t).value();
}

TEST(RobustnessTest, AllNullTableSurvivesPipeline) {
  Table t = MakeAllNullTable(20);
  Result<SubTab> st = SubTab::Fit(t, TinyConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.table.num_rows(), 3u);
  EXPECT_EQ(view.table.num_columns(), 2u);
  for (size_t c = 0; c < view.table.num_columns(); ++c) {
    for (size_t r = 0; r < view.table.num_rows(); ++r) {
      EXPECT_TRUE(view.table.column(c).is_null(r));
    }
  }
}

TEST(RobustnessTest, ConstantTable) {
  Column a = Column::Numeric("a", std::vector<double>(30, 5.0));
  Column b = Column::Categorical("b", std::vector<std::string>(30, "same"));
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  Result<SubTab> st = SubTab::Fit(*t, TinyConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.row_ids.size(), 3u);

  // Metrics degrade gracefully: identical rows => zero diversity.
  BinnedTable binned = BinnedTable::Compute(*t);
  EXPECT_DOUBLE_EQ(Diversity(binned, view.row_ids, view.col_ids), 0.0);
}

TEST(RobustnessTest, SingleRowTable) {
  Column a = Column::Numeric("a", {1.0});
  Column b = Column::Numeric("b", {2.0});
  Column c = Column::Categorical("c", {"x"});
  Result<Table> t = Table::Make({std::move(a), std::move(b), std::move(c)});
  ASSERT_TRUE(t.ok());
  Result<SubTab> st = SubTab::Fit(*t, TinyConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.table.num_rows(), 1u);
  EXPECT_EQ(view.table.num_columns(), 2u);
}

TEST(RobustnessTest, SingleColumnTable) {
  Column a = Column::Numeric("only", {1, 2, 3, 4, 5, 6, 7, 8});
  Result<Table> t = Table::Make({std::move(a)});
  ASSERT_TRUE(t.ok());
  Result<SubTab> st = SubTab::Fit(*t, TinyConfig());
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.table.num_columns(), 1u);
  EXPECT_EQ(view.table.num_rows(), 3u);
}

TEST(RobustnessTest, KAndLLargerThanTable) {
  Column a = Column::Numeric("a", {1, 2});
  Column b = Column::Numeric("b", {3, 4});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  SubTabConfig config = TinyConfig();
  config.k = 100;
  config.l = 100;
  Result<SubTab> st = SubTab::Fit(*t, config);
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.table.num_rows(), 2u);
  EXPECT_EQ(view.table.num_columns(), 2u);
}

TEST(RobustnessTest, ExtremeNumericValues) {
  Column a = Column::Numeric(
      "a", {1e300, -1e300, 0.0, std::numeric_limits<double>::denorm_min(), 42.0,
            -42.0, 1e-300, 7.0});
  Column b = Column::Numeric("b", {1, 2, 3, 4, 5, 6, 7, 8});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  for (size_t r = 0; r < binned.num_rows(); ++r) {
    for (size_t c = 0; c < binned.num_columns(); ++c) {
      EXPECT_LT(TokenBin(binned.token(r, c)),
                binned.binning().column(c).num_bins());
    }
  }
  Result<SubTab> st = SubTab::Fit(*t, TinyConfig());
  EXPECT_TRUE(st.ok());
}

TEST(RobustnessTest, ManyCategoriesCollapseWithoutCrash) {
  std::vector<std::string> values;
  for (int i = 0; i < 500; ++i) values.push_back("cat_" + std::to_string(i % 200));
  Column a = Column::Categorical("a", values);
  Column b = Column::Numeric("b", std::vector<double>(500, 1.0));
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  // 200 categories collapse to max_cat_bins value bins + null bin.
  EXPECT_LE(binned.bins_in_column(0), 6u);
  Result<SubTab> st = SubTab::Fit(*t, TinyConfig());
  EXPECT_TRUE(st.ok());
}

TEST(RobustnessTest, MiningOnTinyTables) {
  Column a = Column::Categorical("a", {"x"});
  Result<Table> t = Table::Make({std::move(a)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  RuleMiningOptions mining;
  mining.min_rule_size = 2;
  RuleSet rules = MineRules(binned, mining);
  EXPECT_TRUE(rules.empty());  // A 1x1 table has no multi-column rules.

  CoverageEvaluator evaluator(binned, rules);
  EXPECT_EQ(evaluator.upcov(), 0u);
  EXPECT_DOUBLE_EQ(evaluator.CellCoverage({0}, {0}), 0.0);
}

TEST(RobustnessTest, BaselinesOnDegenerateInstances) {
  Column a = Column::Categorical("a", {"x", "x", "y"});
  Column b = Column::Categorical("b", {"p", "p", "q"});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  BinnedTable binned = BinnedTable::Compute(*t);
  RuleMiningOptions mining;
  mining.min_rule_size = 2;
  mining.apriori.min_support = 0.5;
  mining.min_confidence = 0.5;
  RuleSet rules = MineRules(binned, mining);
  CoverageEvaluator evaluator(binned, rules);

  RandomBaselineOptions ran;
  ran.k = 5;  // > n.
  ran.l = 5;  // > m.
  ran.max_iterations = 3;
  ran.time_budget_seconds = 5.0;
  BaselineResult r = RandomBaseline(evaluator, ran);
  EXPECT_EQ(r.row_ids.size(), 3u);
  EXPECT_EQ(r.col_ids.size(), 2u);

  BruteForceOptions bf;
  bf.k = 5;
  bf.l = 5;
  BaselineResult best = BruteForceOptimal(evaluator, bf);
  EXPECT_EQ(best.row_ids.size(), 3u);
}

TEST(RobustnessTest, QueryOverAllNullColumn) {
  Table t = MakeAllNullTable(10);
  SpQuery q;
  q.filters = {Predicate::IsNull("a")};
  Result<QueryResult> r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->row_ids.size(), 10u);
  q.filters = {Predicate::Num("a", CmpOp::kGt, 0.0)};
  r = RunQuery(t, q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->row_ids.empty());
}

TEST(RobustnessTest, SelectionWithAllTargetColumns) {
  Column a = Column::Numeric("a", {1, 2, 3, 4});
  Column b = Column::Numeric("b", {5, 6, 7, 8});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  ASSERT_TRUE(t.ok());
  SubTabConfig config = TinyConfig();
  config.l = 2;
  config.target_columns = {"a", "b"};  // |U*| == l: no column clustering.
  Result<SubTab> st = SubTab::Fit(*t, config);
  ASSERT_TRUE(st.ok());
  SubTabView view = st->Select();
  EXPECT_EQ(view.col_ids, (std::vector<size_t>{0, 1}));
}

}  // namespace
}  // namespace subtab
