// Unit + property tests for the association-rule substrate: Apriori itemset
// mining (vs. a brute-force reference) and rule generation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "subtab/data/example_fixture.h"
#include "subtab/rules/miner.h"
#include "subtab/util/rng.h"

namespace subtab {
namespace {

/// A tiny categorical table where every cell is its own bin.
Table TinyTable(const std::vector<std::vector<std::string>>& rows,
                const std::vector<std::string>& names) {
  std::vector<Column> cols;
  for (size_t c = 0; c < names.size(); ++c) {
    std::vector<std::string> values;
    for (const auto& row : rows) values.push_back(row[c]);
    cols.push_back(Column::Categorical(names[c], values));
  }
  Result<Table> t = Table::Make(std::move(cols));
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

/// Brute-force frequent itemsets for verification: enumerates all token
/// subsets (one per column at most) up to max_size.
std::map<std::vector<Token>, size_t> BruteForceItemsets(const BinnedTable& binned,
                                                        double min_support,
                                                        size_t max_size) {
  const size_t n = binned.num_rows();
  const size_t min_count =
      std::max<size_t>(1, static_cast<size_t>(std::ceil(min_support * n)));
  std::map<std::vector<Token>, size_t> counts;
  // For each row, enumerate all subsets of its tokens up to max_size.
  const size_t m = binned.num_columns();
  for (size_t r = 0; r < n; ++r) {
    for (size_t mask = 1; mask < (size_t{1} << m); ++mask) {
      const size_t size = static_cast<size_t>(__builtin_popcountll(mask));
      if (size > max_size) continue;
      std::vector<Token> items;
      for (size_t c = 0; c < m; ++c) {
        if (mask & (size_t{1} << c)) items.push_back(binned.token(r, c));
      }
      std::sort(items.begin(), items.end());
      ++counts[items];
    }
  }
  std::map<std::vector<Token>, size_t> frequent;
  for (const auto& [items, count] : counts) {
    if (count >= min_count) frequent[items] = count;
  }
  return frequent;
}

TEST(AprioriTest, SingletonsCountedCorrectly) {
  Table t = TinyTable({{"a", "x"}, {"a", "y"}, {"b", "x"}}, {"c1", "c2"});
  BinnedTable binned = BinnedTable::Compute(t);
  AprioriOptions opt;
  opt.min_support = 0.0;
  opt.max_itemset_size = 1;
  auto itemsets = MineFrequentItemsets(binned, opt);
  EXPECT_EQ(itemsets.size(), 4u);  // a, b, x, y.
  for (const auto& fi : itemsets) {
    const std::string label = binned.TokenLabel(fi.items[0]);
    if (label == "c1=a") {
      EXPECT_EQ(fi.count, 2u);
    } else if (label == "c2=x") {
      EXPECT_EQ(fi.count, 2u);
    } else if (label == "c1=b") {
      EXPECT_EQ(fi.count, 1u);
    }
  }
}

TEST(AprioriTest, PairSupport) {
  Table t = TinyTable({{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "x"}}, {"c1", "c2"});
  BinnedTable binned = BinnedTable::Compute(t);
  AprioriOptions opt;
  opt.min_support = 0.5;  // Pairs need >= 2 of 4 rows.
  auto itemsets = MineFrequentItemsets(binned, opt);
  // Frequent: {a}(3), {x}(3), {a,x}(2). {y},{b} infrequent.
  ASSERT_EQ(itemsets.size(), 3u);
  bool found_pair = false;
  for (const auto& fi : itemsets) {
    if (fi.items.size() == 2) {
      found_pair = true;
      EXPECT_EQ(fi.count, 2u);
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(AprioriTest, MinSupportPrunes) {
  Table t = TinyTable({{"a"}, {"a"}, {"a"}, {"b"}}, {"c"});
  BinnedTable binned = BinnedTable::Compute(t);
  AprioriOptions opt;
  opt.min_support = 0.5;
  auto itemsets = MineFrequentItemsets(binned, opt);
  ASSERT_EQ(itemsets.size(), 1u);
  EXPECT_EQ(binned.TokenLabel(itemsets[0].items[0]), "c=a");
}

TEST(AprioriTest, TidsMatchActualRows) {
  Table t = TinyTable({{"a", "x"}, {"b", "x"}, {"a", "y"}, {"a", "x"}}, {"c1", "c2"});
  BinnedTable binned = BinnedTable::Compute(t);
  AprioriOptions opt;
  opt.min_support = 0.4;
  auto itemsets = MineFrequentItemsets(binned, opt);
  for (const auto& fi : itemsets) {
    for (uint32_t r : fi.tids.ToIndices()) {
      for (Token item : fi.items) {
        EXPECT_EQ(binned.token(r, TokenColumn(item)), item);
      }
    }
    EXPECT_EQ(fi.count, fi.tids.Count());
  }
}

TEST(AprioriTest, RowSubsetRestrictsUniverse) {
  Table t = TinyTable({{"a"}, {"a"}, {"b"}, {"b"}}, {"c"});
  BinnedTable binned = BinnedTable::Compute(t);
  std::vector<uint32_t> subset = {0, 1};
  AprioriOptions opt;
  opt.min_support = 0.9;
  auto itemsets = MineFrequentItemsets(binned, opt, &subset);
  ASSERT_EQ(itemsets.size(), 1u);
  EXPECT_EQ(binned.TokenLabel(itemsets[0].items[0]), "c=a");
  EXPECT_EQ(itemsets[0].count, 2u);
}

class AprioriRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(AprioriRandomTest, MatchesBruteForceOnRandomTables) {
  // Property: Apriori finds exactly the brute-force frequent itemsets.
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  const size_t n = 20 + rng.Uniform(20);
  const size_t m = 3 + rng.Uniform(3);
  std::vector<std::vector<std::string>> rows(n, std::vector<std::string>(m));
  std::vector<std::string> names;
  for (size_t c = 0; c < m; ++c) names.push_back("col" + std::to_string(c));
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < m; ++c) {
      rows[r][c] = std::string(1, static_cast<char>('a' + rng.Uniform(3)));
    }
  }
  Table t = TinyTable(rows, names);
  BinnedTable binned = BinnedTable::Compute(t);

  AprioriOptions opt;
  opt.min_support = 0.25;
  opt.max_itemset_size = 3;
  auto mined = MineFrequentItemsets(binned, opt);
  auto expected = BruteForceItemsets(binned, opt.min_support, opt.max_itemset_size);

  ASSERT_EQ(mined.size(), expected.size());
  for (const auto& fi : mined) {
    auto it = expected.find(fi.items);
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(fi.count, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriRandomTest, ::testing::Range(0, 8));

// ------------------------------------------------------------------ Rules --

TEST(RuleTest, HoldsForRow) {
  Table t = TinyTable({{"a", "x"}, {"b", "x"}}, {"c1", "c2"});
  BinnedTable binned = BinnedTable::Compute(t);
  Rule rule;
  rule.lhs = {binned.token(0, 0)};
  rule.rhs = {binned.token(0, 1)};
  EXPECT_TRUE(rule.HoldsForRow(binned, 0));
  EXPECT_FALSE(rule.HoldsForRow(binned, 1));
}

TEST(RuleTest, ColumnsAndTokens) {
  Rule rule;
  rule.lhs = {MakeToken(2, 1), MakeToken(0, 3)};
  rule.rhs = {MakeToken(5, 0)};
  std::sort(rule.lhs.begin(), rule.lhs.end());
  EXPECT_EQ(rule.size(), 3u);
  EXPECT_EQ(rule.Columns(), (std::vector<uint32_t>{0, 2, 5}));
  EXPECT_EQ(rule.AllTokens().size(), 3u);
  EXPECT_TRUE(rule.TouchesAnyColumn({5}));
  EXPECT_FALSE(rule.TouchesAnyColumn({1, 3}));
}

TEST(RuleSetTest, FilterByTargets) {
  RuleSet rules;
  Rule r1;
  r1.lhs = {MakeToken(0, 0)};
  r1.rhs = {MakeToken(1, 0)};
  Rule r2;
  r2.lhs = {MakeToken(2, 0)};
  r2.rhs = {MakeToken(3, 0)};
  rules.rules = {r1, r2};
  RuleSet filtered = rules.FilterByTargets({1});
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered.rules[0].rhs[0], MakeToken(1, 0));
  // Empty targets = keep everything (paper's convention).
  EXPECT_EQ(rules.FilterByTargets({}).size(), 2u);
}

TEST(MinerTest, ConfidenceComputedCorrectly) {
  // a -> x holds 2/3 of the times a appears.
  Table t = TinyTable({{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "y"}}, {"c1", "c2"});
  BinnedTable binned = BinnedTable::Compute(t);
  RuleMiningOptions opt;
  opt.apriori.min_support = 0.4;
  opt.min_confidence = 0.6;
  opt.min_rule_size = 2;
  RuleSet rules = MineRules(binned, opt);
  bool found = false;
  for (const Rule& r : rules.rules) {
    if (r.lhs.size() == 1 && binned.TokenLabel(r.lhs[0]) == "c1=a" &&
        r.rhs.size() == 1 && binned.TokenLabel(r.rhs[0]) == "c2=x") {
      found = true;
      EXPECT_NEAR(r.confidence, 2.0 / 3.0, 1e-12);
      EXPECT_NEAR(r.support, 0.5, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, MinConfidenceFilters) {
  Table t = TinyTable({{"a", "x"}, {"a", "y"}, {"a", "z"}, {"a", "w"}}, {"c1", "c2"});
  BinnedTable binned = BinnedTable::Compute(t);
  RuleMiningOptions opt;
  opt.apriori.min_support = 0.2;
  opt.min_confidence = 0.5;
  opt.min_rule_size = 2;
  RuleSet rules = MineRules(binned, opt);
  // No c1=a -> c2=? rule can reach confidence 0.5 (each rhs holds 1/4).
  for (const Rule& r : rules.rules) {
    if (r.lhs.size() == 1 && TokenColumn(r.lhs[0]) == 0) {
      EXPECT_NE(TokenColumn(r.rhs[0]), 1u);
    }
  }
}

TEST(MinerTest, MinRuleSizeRespected) {
  Table t = TinyTable({{"a", "x", "p"}, {"a", "x", "p"}, {"a", "x", "q"}},
                      {"c1", "c2", "c3"});
  BinnedTable binned = BinnedTable::Compute(t);
  RuleMiningOptions opt;
  opt.apriori.min_support = 0.5;
  opt.min_rule_size = 3;
  RuleSet rules = MineRules(binned, opt);
  for (const Rule& r : rules.rules) EXPECT_GE(r.size(), 3u);
  EXPECT_FALSE(rules.empty());
}

TEST(MinerTest, SupportAndConfidenceBoundsHold) {
  Rng rng(7);
  std::vector<std::vector<std::string>> rows(60, std::vector<std::string>(4));
  for (auto& row : rows) {
    for (auto& cell : row) cell = std::string(1, static_cast<char>('a' + rng.Uniform(2)));
  }
  Table t = TinyTable(rows, {"w", "x", "y", "z"});
  BinnedTable binned = BinnedTable::Compute(t);
  RuleMiningOptions opt;
  opt.apriori.min_support = 0.15;
  opt.min_confidence = 0.55;
  opt.min_rule_size = 2;
  RuleSet rules = MineRules(binned, opt);
  for (const Rule& r : rules.rules) {
    EXPECT_GE(r.support, 0.15);
    EXPECT_GE(r.confidence, 0.55);
    EXPECT_LE(r.confidence, 1.0 + 1e-12);
    // Verify support by direct counting.
    size_t count = 0;
    for (size_t row = 0; row < binned.num_rows(); ++row) {
      count += r.HoldsForRow(binned, row);
    }
    EXPECT_NEAR(r.support, static_cast<double>(count) / binned.num_rows(), 1e-12);
  }
}

TEST(MinerTest, TargetedMiningPutsTargetInRhs) {
  Table t = TinyTable({{"a", "x", "1"},
                       {"a", "x", "1"},
                       {"a", "x", "1"},
                       {"b", "y", "0"},
                       {"b", "y", "0"},
                       {"a", "y", "0"}},
                      {"c1", "c2", "target"});
  BinnedTable binned = BinnedTable::Compute(t);
  RuleMiningOptions opt;
  opt.apriori.min_support = 0.3;
  opt.min_confidence = 0.6;
  opt.min_rule_size = 2;
  RuleSet rules = MineRulesForTargets(binned, opt, {2});
  ASSERT_FALSE(rules.empty());
  for (const Rule& r : rules.rules) {
    ASSERT_EQ(r.rhs.size(), 1u);
    EXPECT_EQ(TokenColumn(r.rhs[0]), 2u);
    for (Token lt : r.lhs) EXPECT_NE(TokenColumn(lt), 2u);
  }
  // The planted {a,x} -> 1 rule must be found with full confidence.
  bool found = false;
  for (const Rule& r : rules.rules) {
    if (r.lhs.size() == 2 && binned.TokenLabel(r.rhs[0]) == "target=1") {
      found = true;
      EXPECT_NEAR(r.confidence, 1.0, 1e-12);
      EXPECT_NEAR(r.support, 0.5, 1e-12);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, RulesToStringReadable) {
  Table t = TinyTable({{"a", "x"}, {"a", "x"}}, {"c1", "c2"});
  BinnedTable binned = BinnedTable::Compute(t);
  RuleMiningOptions opt;
  opt.apriori.min_support = 0.5;
  opt.min_rule_size = 2;
  RuleSet rules = MineRules(binned, opt);
  ASSERT_FALSE(rules.empty());
  const std::string s = rules.rules[0].ToString(binned);
  EXPECT_NE(s.find("->"), std::string::npos);
  EXPECT_NE(s.find("supp="), std::string::npos);
}

// --------------------------------------------- Fig. 3 rule-family fixture --

TEST(ExampleFixtureTest, RuleFamilyHas21Rules) {
  // The paper: 13 rules hold for the CANCELLED=1 rows and 8 for the
  // CANCELLED=0 rows.
  Table t = MakeExampleTable();
  BinnedTable binned = BinnedTable::Compute(t);
  RuleSet rules = EnumerateRuleFamily(binned, kExampleCancelled);
  EXPECT_EQ(rules.size(), 21u);

  size_t cancelled_1 = 0;
  size_t cancelled_0 = 0;
  for (const Rule& r : rules.rules) {
    const std::string rhs = binned.TokenLabel(r.rhs[0]);
    if (rhs == "CANCELLED=1") ++cancelled_1;
    if (rhs == "CANCELLED=0") ++cancelled_0;
  }
  EXPECT_EQ(cancelled_1, 13u);
  EXPECT_EQ(cancelled_0, 8u);
}

TEST(ExampleFixtureTest, EveryRuleHoldsForAtLeastTwoRows) {
  Table t = MakeExampleTable();
  BinnedTable binned = BinnedTable::Compute(t);
  RuleSet rules = EnumerateRuleFamily(binned, kExampleCancelled);
  for (const Rule& r : rules.rules) {
    size_t holds = 0;
    for (size_t row = 0; row < 8; ++row) holds += r.HoldsForRow(binned, row);
    EXPECT_GE(holds, 2u);
    EXPECT_GE(r.lhs.size(), 2u);
  }
}

TEST(ExampleFixtureTest, PaperExampleRulePresent) {
  // "DEP._TIME=NaN, YEAR=2015 -> CANCELLED=1 applies to rows 1-4".
  Table t = MakeExampleTable();
  BinnedTable binned = BinnedTable::Compute(t);
  RuleSet rules = EnumerateRuleFamily(binned, kExampleCancelled);
  bool found = false;
  for (const Rule& r : rules.rules) {
    if (r.lhs.size() != 2) continue;
    std::vector<std::string> labels;
    for (Token tok : r.lhs) labels.push_back(binned.TokenLabel(tok));
    std::sort(labels.begin(), labels.end());
    if (labels[0] == "DEP._TIME=NaN" && labels[1] == "YEAR=2015" &&
        binned.TokenLabel(r.rhs[0]) == "CANCELLED=1") {
      found = true;
      EXPECT_NEAR(r.support, 0.5, 1e-12);  // 4 of 8 rows.
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace subtab
