// Tests for the sub-linear sampled selection path: the deterministic
// weighted sampler in core/select.cc (alias-table draws over bin-signature
// rarity weights), the SampleQualityCheck gate (util/sample_quality.h), and
// the serving engine's sampled-selection integration — differential against
// exact SelectScoped (the reference path) on identical seeds, the quality
// gate's fallback accounting, and a concurrent sampled-selects-vs-appends
// mix for the TSan matrix.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "subtab/core/subtab.h"
#include "subtab/data/datasets.h"
#include "subtab/data/generator.h"
#include "subtab/metrics/combined.h"
#include "subtab/rules/miner.h"
#include "subtab/service/engine.h"
#include "subtab/stream/stream_session.h"
#include "subtab/util/sample_quality.h"

namespace subtab {
namespace {

using service::EngineOptions;
using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;
using stream::StreamSession;
using stream::StreamSessionOptions;

SubTabConfig SmallConfig(uint64_t seed = 7) {
  SubTabConfig config;
  config.k = 10;
  config.l = 6;
  config.embedding.dim = 16;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

/// A planted-pattern table (the CY generator's ground-truth rules) sized so
/// sampling is meaningfully sub-scope.
SubTab PatternModel(size_t rows, uint64_t seed = 7) {
  GeneratedDataset data = MakeCyber(rows);
  Result<SubTab> model = SubTab::Fit(data.table, SmallConfig(seed));
  SUBTAB_CHECK(model.ok());
  return std::move(*model);
}

/// An adversarial table for the quality gate: several id-like numeric
/// columns with co-prime strides, so nearly every row's bin signature is
/// unique and rarity weighting has nothing to prefer.
Table AllUniqueRowsTable(size_t rows) {
  std::vector<double> a, b, c, d;
  for (size_t i = 0; i < rows; ++i) {
    a.push_back(static_cast<double>(i));
    b.push_back(static_cast<double>((i * 7919) % rows));
    c.push_back(static_cast<double>((i * 104729) % rows));
    d.push_back(static_cast<double>((i * 1299709) % rows));
  }
  Result<Table> table =
      Table::Make({Column::Numeric("a", a), Column::Numeric("b", b),
                   Column::Numeric("c", c), Column::Numeric("d", d)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

// ------------------------------------------------------ Core sampled path --

TEST(SampledSelectionTest, SameSeedSameResultAndValidShape) {
  const SubTab model = PatternModel(4000);
  SelectionScope scope;  // Full table.
  SelectionSamplingOptions sampling;
  sampling.min_rows = 1;
  sampling.sample_rows = 512;

  const SubTabView v1 = model.SelectScoped(scope, 10, 6, 123, sampling);
  const SubTabView v2 = model.SelectScoped(scope, 10, 6, 123, sampling);
  EXPECT_TRUE(v1.sampled);
  EXPECT_GT(v1.sample_rows, 0u);
  EXPECT_LE(v1.sample_rows, 512u);
  EXPECT_EQ(v1.row_ids, v2.row_ids);
  EXPECT_EQ(v1.col_ids, v2.col_ids);
  EXPECT_EQ(v1.sample_rows, v2.sample_rows);

  ASSERT_EQ(v1.row_ids.size(), 10u);
  for (size_t i = 1; i < v1.row_ids.size(); ++i) {
    EXPECT_LT(v1.row_ids[i - 1], v1.row_ids[i]);  // Sorted, distinct.
  }
  EXPECT_LT(v1.row_ids.back(), model.table().num_rows());
}

TEST(SampledSelectionTest, DisabledSamplingIsBitIdenticalToExact) {
  const SubTab model = PatternModel(2000);
  SelectionScope scope;
  // min_rows = 0 disables the sampled path entirely; a threshold above the
  // scope must behave identically.
  for (const size_t min_rows : {size_t{0}, size_t{100000}}) {
    SelectionSamplingOptions sampling;
    sampling.min_rows = min_rows;
    sampling.sample_rows = 256;
    for (const uint64_t seed : {11ull, 77ull, 123456ull}) {
      const SubTabView exact = model.SelectScoped(scope, 10, 6, seed);
      const SubTabView gated = model.SelectScoped(scope, 10, 6, seed, sampling);
      EXPECT_FALSE(exact.sampled);
      EXPECT_FALSE(gated.sampled);
      EXPECT_EQ(gated.row_ids, exact.row_ids) << "min_rows=" << min_rows;
      EXPECT_EQ(gated.col_ids, exact.col_ids);
    }
  }
}

TEST(SampledSelectionTest, QualityRatioMeetsGateOnPlantedPatterns) {
  const SubTab model = PatternModel(6000);
  SelectionScope scope;
  SelectionSamplingOptions sampling;
  sampling.min_rows = 1;
  sampling.sample_rows = 1024;

  SampleQualityCheck quality;
  double worst = 2.0;
  for (const uint64_t seed : {5ull, 21ull, 99ull}) {
    const SubTabView sampled = model.SelectScoped(scope, 10, 8, seed, sampling);
    const SubTabView exact = model.SelectScoped(scope, 10, 8, seed);
    ASSERT_TRUE(sampled.sampled);
    const double ratio = quality.QualityRatio(
        /*model_digest=*/1, model.preprocessed().binned(),
        /*keep_alive=*/nullptr, sampled.row_ids, sampled.col_ids,
        exact.row_ids, exact.col_ids);
    worst = std::min(worst, ratio);
  }
  // The issue's acceptance gate: rarity-weighted sampling must preserve at
  // least 95% of the exact selection's combined coverage+diversity score.
  EXPECT_GE(worst, 0.95);
  EXPECT_EQ(quality.cached_models(), 1u);  // Rules mined once, not per call.
}

TEST(SampleQualityCheckTest, ScheduleChecksFirstThenEveryNth) {
  SampleQualityOptions options;
  options.check_every = 4;
  SampleQualityCheck quality(options);
  // Per model: checks sampled selections 1, 5, 9, ... (the first is always
  // checked so a misconfigured sampler is caught immediately).
  EXPECT_TRUE(quality.ShouldCheck(1));
  EXPECT_FALSE(quality.ShouldCheck(1));
  EXPECT_FALSE(quality.ShouldCheck(1));
  EXPECT_FALSE(quality.ShouldCheck(1));
  EXPECT_TRUE(quality.ShouldCheck(1));
  // Independent counter per model digest.
  EXPECT_TRUE(quality.ShouldCheck(2));

  SampleQualityOptions off;
  off.check_every = 0;
  SampleQualityCheck never(off);
  EXPECT_FALSE(never.ShouldCheck(1));
  EXPECT_FALSE(never.ShouldCheck(1));
}

// -------------------------------------------------------- Engine sampling --

TEST(EngineSamplingTest, SampledEngineMatchesDirectSampledPath) {
  GeneratedDataset data = MakeCyber(3000);
  EngineOptions options;
  options.num_threads = 2;
  options.sampled_selection_min_rows = 500;
  options.selection_sample_rows = 256;
  options.sample_quality_check_every = 0;  // Pure sampled path, no gate.
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("cy", data.table, SmallConfig()).ok());

  SelectRequest request{.table_id = "cy", .query = {}, .k = {}, .l = {},
                        .seed = {}};
  const SelectResponse response = engine.Select(request);
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.view, nullptr);
  EXPECT_TRUE(response.view->sampled);
  EXPECT_EQ(response.view->sample_rows, 256u);

  // The engine's sampled result must equal the direct core-path result with
  // the same options — the engine adds routing, not randomness.
  SelectionSamplingOptions sampling;
  sampling.min_rows = options.sampled_selection_min_rows;
  sampling.sample_rows = options.selection_sample_rows;
  std::shared_ptr<const SubTab> model = engine.GetModel("cy");
  ASSERT_NE(model, nullptr);
  const SubTabView direct =
      model->SelectScoped(SelectionScope{{}, {}, {}}, SmallConfig().k,
                          SmallConfig().l, std::nullopt, sampling);
  EXPECT_EQ(response.view->row_ids, direct.row_ids);
  EXPECT_EQ(response.view->col_ids, direct.col_ids);

  const auto stats = engine.Stats();
  EXPECT_EQ(stats.selection.sampled, 1u);
  EXPECT_EQ(stats.selection.exact, 0u);
  EXPECT_EQ(stats.selection.sample_rows_total, 256u);
  EXPECT_EQ(stats.selection.scope_rows_sampled, 3000u);
  EXPECT_EQ(stats.selection.quality_checks, 0u);
}

TEST(EngineSamplingTest, ThresholdZeroEngineIsBitIdenticalToSerial) {
  // Randomized differential: with sampling disabled the engine must remain
  // bit-identical to the serial SelectForQuery reference, per request seed.
  GeneratedDataset data = MakeCyber(1500);
  EngineOptions options;
  options.num_threads = 2;
  options.sampled_selection_min_rows = 0;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("cy", data.table, SmallConfig()).ok());
  Result<SubTab> reference = SubTab::Fit(data.table, SmallConfig());
  ASSERT_TRUE(reference.ok());

  const std::string numeric = data.table.column(0).name();
  for (const uint64_t seed : {3ull, 42ull, 1001ull}) {
    SpQuery query;
    query.filters = {Predicate::NotNull(numeric)};
    SelectRequest request{.table_id = "cy", .query = query, .k = {}, .l = {},
                          .seed = seed};
    const SelectResponse response = engine.Select(request);
    ASSERT_TRUE(response.status.ok());
    EXPECT_FALSE(response.view->sampled);
    Result<SubTabView> serial =
        reference->SelectForQuery(query, {}, {}, seed);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(response.view->row_ids, serial->row_ids) << "seed=" << seed;
    EXPECT_EQ(response.view->col_ids, serial->col_ids);
  }
  EXPECT_EQ(engine.Stats().selection.sampled, 0u);
  EXPECT_EQ(engine.Stats().selection.exact, 3u);
}

TEST(EngineSamplingTest, UnreachableGateFallsBackToExactAndCounts) {
  // An all-unique-rows table gives the sampler nothing to prefer, and a
  // floor above 1 + epsilon is unreachable by construction (the ratio
  // hovers at ~1), so every checked selection must fall back to exact.
  Table adversarial = AllUniqueRowsTable(2000);
  EngineOptions options;
  options.num_threads = 2;
  options.sampled_selection_min_rows = 500;
  options.selection_sample_rows = 128;
  options.sample_quality_check_every = 1;  // Check every sampled selection.
  options.sampled_selection_min_quality = 1.25;
  ServingEngine engine(options);
  SubTabConfig config = SmallConfig();
  config.k = 8;
  config.l = 3;
  ASSERT_TRUE(engine.RegisterTable("adv", adversarial, config).ok());

  SelectRequest request{.table_id = "adv", .query = {}, .k = {}, .l = {},
                        .seed = {}};
  const SelectResponse response = engine.Select(request);
  ASSERT_TRUE(response.status.ok());

  // The served result is the exact fallback, bit-identical to the exact
  // reference path (and accordingly not marked sampled).
  std::shared_ptr<const SubTab> model = engine.GetModel("adv");
  const SubTabView exact =
      model->SelectScoped(SelectionScope{{}, {}, {}}, config.k, config.l);
  EXPECT_FALSE(response.view->sampled);
  EXPECT_EQ(response.view->row_ids, exact.row_ids);
  EXPECT_EQ(response.view->col_ids, exact.col_ids);

  const auto stats = engine.Stats();
  EXPECT_EQ(stats.selection.sampled, 1u);  // It ran sampled, then fell back.
  EXPECT_EQ(stats.selection.quality_checks, 1u);
  EXPECT_EQ(stats.selection.quality_fallbacks, 1u);
  EXPECT_GT(stats.selection.last_quality_ratio, 0.0);
  EXPECT_LT(stats.selection.last_quality_ratio, 1.25);
  EXPECT_EQ(stats.selection.min_quality_ratio,
            stats.selection.last_quality_ratio);
}

// ---------------------------------------------- Concurrency (TSan matrix) --

Table GrowingTable(size_t n, size_t offset = 0) {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (size_t i = offset; i < offset + n; ++i) {
    a.push_back(static_cast<double>(i % 60));
    b.push_back(static_cast<double>(i % 7) * 2.5);
    c.push_back(i % 3 == 0 ? "x" : i % 3 == 1 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

TEST(EngineSamplingTest, ConcurrentSampledSelectsWithStreamAppends) {
  StreamSessionOptions stream_options;
  stream_options.config = SmallConfig();
  stream_options.config.k = 4;
  stream_options.config.l = 3;
  stream_options.policy.max_out_of_range_rate = 1.0;
  stream_options.policy.max_new_category_rate = 1.0;
  stream_options.policy.staleness_budget = 1e9;
  stream_options.policy.incremental_threshold = 1e9;
  auto session = StreamSession::Open(GrowingTable(600), stream_options);
  ASSERT_TRUE(session.ok());

  EngineOptions options;
  options.num_threads = 4;
  options.sampled_selection_min_rows = 200;
  options.selection_sample_rows = 64;
  options.sample_quality_check_every = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());

  std::atomic<int> failures{0};
  std::vector<std::thread> selectors;
  for (int t = 0; t < 3; ++t) {
    selectors.emplace_back([&engine, &failures, t] {
      for (int i = 0; i < 25; ++i) {
        SelectRequest request{.table_id = "live", .query = {}, .k = {},
                              .l = {},
                              .seed = static_cast<uint64_t>(t * 1000 + i)};
        const SelectResponse response = engine.Select(request);
        if (!response.status.ok() || response.view == nullptr) {
          failures.fetch_add(1);
        }
      }
    });
  }
  std::thread appender([&engine, &failures] {
    for (int i = 0; i < 8; ++i) {
      if (!engine.Append("live", GrowingTable(20, 600 + 20 * i)).ok()) {
        failures.fetch_add(1);
      }
    }
  });
  for (auto& thread : selectors) thread.join();
  appender.join();
  engine.Drain();

  EXPECT_EQ(failures.load(), 0);
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.requests_completed, 75u);
  EXPECT_GE(stats.selection.sampled + stats.selection.quality_fallbacks, 1u);
  EXPECT_GE(stats.selection.quality_checks, 1u);
}

}  // namespace
}  // namespace subtab
