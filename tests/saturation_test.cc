// Saturation tests for the serving pipeline's admission control: overload
// must shed (fail fast with kUnavailable), never deadlock or queue without
// bound, and capacity must come back once the burst passes. These run as
// the "stress" ctest shard (see CMakeLists.txt): heavier than the unit
// suites, exercised by the Release stress CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "subtab/ops/slo_monitor.h"
#include "subtab/service/engine.h"

namespace subtab {
namespace {

using service::EngineOptions;
using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;

Table SmallTable(double shift = 0.0) {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (int i = 0; i < 400; ++i) {
    a.push_back(static_cast<double>(i % 97) + shift);
    b.push_back(static_cast<double>(i % 13) * 1.5 - shift);
    c.push_back(i % 4 == 0 ? "w" : i % 4 == 1 ? "x" : i % 4 == 2 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

SubTabConfig SmallConfig(uint64_t seed = 3) {
  SubTabConfig config;
  config.k = 5;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

TEST(SaturationTest, OverloadShedsAndDrainsWithoutDeadlock) {
  EngineOptions options;
  options.num_threads = 2;
  options.max_pending_per_tenant = 16;
  options.selection_cache_capacity = 64;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", SmallTable(), SmallConfig()).ok());

  // Open-loop overload: 4 submitter threads fire 200 distinct requests each
  // without waiting for responses — far beyond 2 workers x 16 admitted.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::shared_future<SelectResponse>>> futures(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&engine, &futures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SelectRequest request;
        request.table_id = "t";
        request.query.filters = {Predicate::Num(
            "a", CmpOp::kGe, static_cast<double>(t * kPerThread + i) * 0.1)};
        futures[t].push_back(engine.SubmitSelect(request));
      }
    });
  }
  for (auto& t : submitters) t.join();

  // No deadlock: every future resolves. (The gtest timeout would flag a hang;
  // resolve everything and classify.)
  size_t ok = 0, shed = 0, other = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      const SelectResponse response = future.get();
      if (response.status.ok()) {
        ++ok;
      } else if (response.status.code() == StatusCode::kUnavailable) {
        ++shed;
      } else {
        ++other;
      }
    }
  }
  engine.Drain();

  const service::EngineStats stats = engine.Stats();
  EXPECT_EQ(ok + shed + other, size_t{kThreads * kPerThread});
  EXPECT_GT(shed, 0u) << "overload never tripped admission control";
  EXPECT_GT(ok, 0u) << "admission control starved every request";
  EXPECT_EQ(stats.pipeline.requests_shed, shed);
  EXPECT_EQ(stats.requests_submitted, stats.requests_completed);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.pipeline.tenants_tracked, 0u);  // All capacity released.

  // Capacity recovered: a fresh request after the burst is admitted.
  SelectRequest after;
  after.table_id = "t";
  EXPECT_TRUE(engine.Select(after).status.ok());
}

TEST(SaturationTest, PerTenantBoundsIsolateTenants) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_pending_per_tenant = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("noisy", SmallTable(), SmallConfig()).ok());
  ASSERT_TRUE(engine.RegisterTable("quiet", SmallTable(1.0), SmallConfig()).ok());

  // Hold the worker, then saturate the noisy tenant far past its bound.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });
  std::vector<std::shared_future<SelectResponse>> noisy;
  for (int i = 0; i < 10; ++i) {
    SelectRequest request;
    request.table_id = "noisy";
    request.query.filters = {
        Predicate::Num("a", CmpOp::kGe, static_cast<double>(i))};
    noisy.push_back(engine.SubmitSelect(request));
  }
  // The quiet tenant's bound is untouched by the noisy tenant's backlog.
  SelectRequest quiet;
  quiet.table_id = "quiet";
  std::shared_future<SelectResponse> quiet_future = engine.SubmitSelect(quiet);
  EXPECT_NE(quiet_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // Admitted (queued), not shed.

  gate.set_value();
  engine.Drain();
  EXPECT_TRUE(quiet_future.get().status.ok());
  size_t noisy_shed = 0;
  for (auto& future : noisy) {
    if (future.get().status.code() == StatusCode::kUnavailable) ++noisy_shed;
  }
  EXPECT_EQ(noisy_shed, 8u);  // 2 admitted, 8 shed.
}

TEST(SaturationTest, GlobalQueueBoundShedsEveryone) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", SmallTable(), SmallConfig()).ok());

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });
  std::vector<std::shared_future<SelectResponse>> futures;
  for (int i = 0; i < 20; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query.filters = {
        Predicate::Num("b", CmpOp::kLe, static_cast<double>(i))};
    futures.push_back(engine.SubmitSelect(request));
  }
  gate.set_value();
  engine.Drain();
  size_t ok = 0, shed = 0;
  for (auto& future : futures) {
    const SelectResponse response = future.get();
    if (response.status.ok()) {
      ++ok;
    } else if (response.status.code() == StatusCode::kUnavailable) {
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(ok + shed, futures.size());
}

// The ops plane's view of this suite's induced overload: an SloMonitor
// attached to the saturated engine must see the shed burst in its burn
// windows and flip health to degraded, then recover once traffic runs
// clean. The monitor is driven with real engine snapshots at synthetic
// times (no ticker thread), so the flip is deterministic.
TEST(SaturationTest, SloMonitorFlipsDegradedUnderInducedOverload) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", SmallTable(), SmallConfig()).ok());

  ops::SloOptions slo;
  slo.short_window_seconds = 1.0;
  slo.long_window_seconds = 2.0;
  slo.shed_rate_objective = 0.01;
  slo.latency_p95_objective_seconds = 1e9;  // Judge on shedding alone.
  slo.recovery_ticks = 1;
  ops::SloMonitor monitor(&engine, slo);

  double now = 0.0;
  engine.Stats();
  monitor.TickWithSnapshotForTesting(engine.metrics().Snapshot(), now++);
  EXPECT_EQ(monitor.health(), ops::HealthState::kOk);

  // Same overload shape as GlobalQueueBoundShedsEveryone.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });
  std::vector<std::shared_future<SelectResponse>> futures;
  for (int i = 0; i < 20; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query.filters = {
        Predicate::Num("a", CmpOp::kGe, static_cast<double>(i))};
    futures.push_back(engine.SubmitSelect(request));
  }
  gate.set_value();
  engine.Drain();
  size_t shed = 0;
  for (auto& future : futures) {
    if (future.get().status.code() == StatusCode::kUnavailable) ++shed;
  }
  ASSERT_GT(shed, 0u);

  engine.Stats();
  monitor.TickWithSnapshotForTesting(engine.metrics().Snapshot(), now++);
  EXPECT_EQ(monitor.health(), ops::HealthState::kDegraded);
  EXPECT_GT(monitor.status().burn_shed_short, 1.0);

  // Clean ticks (no new sheds) age the burst out of the windows.
  for (int i = 0; i < 10 && monitor.health() != ops::HealthState::kOk; ++i) {
    engine.Stats();
    monitor.TickWithSnapshotForTesting(engine.metrics().Snapshot(), now++);
  }
  EXPECT_EQ(monitor.health(), ops::HealthState::kOk);
  EXPECT_GE(monitor.status().transitions, 2u);
}

}  // namespace
}  // namespace subtab
