// Tests for the serving subsystem (service/): the sharded LRU primitive,
// the thread pool, fingerprints, the model registry (eviction, single
// fit sharing, disk persistence), and the engine (concurrent results
// bit-identical to the serial path, in-flight dedup, cache counters).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <thread>

#include "subtab/core/fingerprint.h"
#include "subtab/eda/engine_replay.h"
#include "subtab/eda/session_generator.h"
#include "subtab/data/datasets.h"
#include "subtab/service/engine.h"
#include "subtab/service/lru_cache.h"
#include "subtab/service/model_registry.h"
#include "subtab/service/selection_cache.h"
#include "subtab/util/thread_pool.h"

namespace subtab {
namespace {

using service::CacheCounters;
using service::EngineOptions;
using service::ModelRegistry;
using service::ModelRegistryOptions;
using service::NormalizedQueryKey;
using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;
using service::ShardedLruCache;

/// A small table whose contents vary with `shift`, so distinct shifts give
/// distinct fingerprints. Fits in milliseconds with TinyConfig.
Table TinyTable(double shift = 0.0) {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (int i = 0; i < 60; ++i) {
    a.push_back(static_cast<double>(i) + shift);
    b.push_back(static_cast<double>(i % 7) * 2.5 - shift);
    c.push_back(i % 3 == 0 ? "x" : i % 3 == 1 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

SubTabConfig TinyConfig(uint64_t seed = 7) {
  SubTabConfig config;
  config.k = 4;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

SpQuery FilterQuery(double threshold) {
  SpQuery query;
  query.filters = {Predicate::Num("a", CmpOp::kGe, threshold)};
  return query;
}

// ------------------------------------------------------------- LRU cache --

struct IntHasher {
  uint64_t operator()(int key) const { return HashMix(static_cast<uint64_t>(key)); }
};

TEST(LruCacheTest, HitMissAndRecencyEviction) {
  ShardedLruCache<int, int, IntHasher> cache(2, /*num_shards=*/1);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(2, std::make_shared<const int>(20));
  ASSERT_NE(cache.Get(1), nullptr);  // Refreshes 1; 2 is now LRU.
  EXPECT_EQ(*cache.Get(1), 10);
  cache.Put(3, std::make_shared<const int>(30));
  EXPECT_FALSE(cache.Contains(2));  // Evicted as least-recent.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));

  CacheCounters counters = cache.Stats();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.insertions, 3u);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
}

TEST(LruCacheTest, PutReplacesValueWithoutEviction) {
  ShardedLruCache<int, int, IntHasher> cache(2, 1);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(1, std::make_shared<const int>(11));
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

// ----------------------------------------------------------- Thread pool --

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not block.
}

// ----------------------------------------------------------- Fingerprints --

TEST(FingerprintTest, StableAcrossIdenticalConstructions) {
  EXPECT_EQ(TableFingerprint(TinyTable(1.0)), TableFingerprint(TinyTable(1.0)));
  EXPECT_EQ(ConfigFingerprint(TinyConfig()), ConfigFingerprint(TinyConfig()));
}

TEST(FingerprintTest, DistinguishesNullFromZero) {
  // NaN input cells become nulls; they must not collide with literal 0.0.
  Result<Table> with_null =
      Table::Make({Column::Numeric("a", {1.0, std::nan(""), 3.0})});
  Result<Table> with_zero = Table::Make({Column::Numeric("a", {1.0, 0.0, 3.0})});
  ASSERT_TRUE(with_null.ok());
  ASSERT_TRUE(with_zero.ok());
  EXPECT_NE(TableFingerprint(*with_null), TableFingerprint(*with_zero));
}

TEST(FingerprintTest, SensitiveToContentAndConfig) {
  EXPECT_NE(TableFingerprint(TinyTable(1.0)), TableFingerprint(TinyTable(2.0)));
  SubTabConfig config = TinyConfig();
  SubTabConfig changed = TinyConfig();
  changed.seed = config.seed + 1;
  EXPECT_NE(ConfigFingerprint(config), ConfigFingerprint(changed));
  changed = TinyConfig();
  changed.binning.num_bins += 1;
  EXPECT_NE(ConfigFingerprint(config), ConfigFingerprint(changed));
}

TEST(FingerprintTest, NormalizedQueryKeyIgnoresFilterOrder) {
  SpQuery ab;
  ab.filters = {Predicate::Num("a", CmpOp::kGe, 1.0),
                Predicate::Str("c", CmpOp::kEq, "x")};
  SpQuery ba;
  ba.filters = {Predicate::Str("c", CmpOp::kEq, "x"),
                Predicate::Num("a", CmpOp::kGe, 1.0)};
  EXPECT_EQ(NormalizedQueryKey(ab), NormalizedQueryKey(ba));

  SpQuery limited = ab;
  limited.limit = 5;
  EXPECT_NE(NormalizedQueryKey(ab), NormalizedQueryKey(limited));
  SpQuery ordered = ab;
  ordered.order_by = "a";
  EXPECT_NE(NormalizedQueryKey(ab), NormalizedQueryKey(ordered));
}

TEST(FingerprintTest, NormalizedQueryKeyIsLossless) {
  // Thresholds that render identically at display precision must not share
  // a cache key.
  EXPECT_NE(NormalizedQueryKey(FilterQuery(0.1231)),
            NormalizedQueryKey(FilterQuery(0.1234)));
  // A string literal containing quote/'&&' sequences must not collide with
  // the multi-predicate query it mimics.
  SpQuery crafted;
  crafted.filters = {Predicate::Str("c", CmpOp::kEq, "x' && d == 'y")};
  SpQuery two;
  two.filters = {Predicate::Str("c", CmpOp::kEq, "x"),
                 Predicate::Str("d", CmpOp::kEq, "y")};
  EXPECT_NE(NormalizedQueryKey(crafted), NormalizedQueryKey(two));
}

// --------------------------------------------------------- Model registry --

TEST(ModelRegistryTest, SecondSessionSharesOneFit) {
  ModelRegistry registry;
  Table table = TinyTable();
  SubTabConfig config = TinyConfig();
  auto first = registry.GetOrFit(table, config);
  ASSERT_TRUE(first.ok());
  auto second = registry.GetOrFit(table, config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // Same instance, one fit.
  EXPECT_EQ(registry.Stats().fits, 1u);
  EXPECT_EQ(registry.Stats().cache.hits, 1u);
}

TEST(ModelRegistryTest, LruEvictionAndRefit) {
  ModelRegistryOptions options;
  options.capacity = 2;
  options.num_shards = 1;
  ModelRegistry registry(options);
  SubTabConfig config = TinyConfig();
  ASSERT_TRUE(registry.GetOrFit(TinyTable(1.0), config).ok());
  ASSERT_TRUE(registry.GetOrFit(TinyTable(2.0), config).ok());
  ASSERT_TRUE(registry.GetOrFit(TinyTable(3.0), config).ok());  // Evicts 1.0.
  EXPECT_EQ(registry.Stats().fits, 3u);
  EXPECT_EQ(registry.Stats().cache.evictions, 1u);
  EXPECT_EQ(registry.Peek(MakeModelKey(TinyTable(1.0), config)), nullptr);
  // Re-opening the evicted table re-fits.
  ASSERT_TRUE(registry.GetOrFit(TinyTable(1.0), config).ok());
  EXPECT_EQ(registry.Stats().fits, 4u);
}

TEST(ModelRegistryTest, PersistsModelsAcrossRegistries) {
  // Fresh per-run scratch dir: a leftover artifact from a previous run would
  // turn the first registry's fit into a load.
  const std::string dir = ::testing::TempDir() + "/subtab_registry_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ModelRegistryOptions options;
  options.persist_dir = dir;
  Table table = TinyTable(5.0);
  SubTabConfig config = TinyConfig();

  ModelRegistry first(options);
  auto fitted = first.GetOrFit(table, config);
  ASSERT_TRUE(fitted.ok());
  EXPECT_EQ(first.Stats().fits, 1u);

  ModelRegistry second(options);  // Fresh process, same disk cache.
  auto loaded = second.GetOrFit(table, config);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(second.Stats().fits, 0u);
  EXPECT_EQ(second.Stats().loads, 1u);
  // The restored model selects identically.
  SubTabView a = (*fitted)->Select();
  SubTabView b = (*loaded)->Select();
  EXPECT_EQ(a.row_ids, b.row_ids);
  EXPECT_EQ(a.col_ids, b.col_ids);
}

// ----------------------------------------------------------------- Engine --

TEST(EngineTest, UnknownTableIsNotFound) {
  ServingEngine engine;
  SelectRequest request;
  request.table_id = "nope";
  SelectResponse response = engine.Select(request);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Stats().requests_failed, 1u);
}

TEST(EngineTest, ConcurrentSelectsMatchSerialPath) {
  EngineOptions options;
  options.num_threads = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("t");
  ASSERT_NE(model, nullptr);

  // 16 distinct queries (plus the whole table), all in flight at once.
  std::vector<SelectRequest> requests;
  for (int i = 0; i < 16; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query = FilterQuery(static_cast<double>(i));
    requests.push_back(request);
  }
  SelectRequest whole;
  whole.table_id = "t";
  requests.push_back(whole);

  std::vector<std::shared_future<SelectResponse>> futures;
  for (const SelectRequest& request : requests) {
    futures.push_back(engine.SubmitSelect(request));
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    SelectResponse response = futures[i].get();
    Result<SubTabView> serial = model->SelectForQuery(requests[i].query);
    ASSERT_TRUE(response.status.ok());
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(response.view->row_ids, serial->row_ids);
    EXPECT_EQ(response.view->col_ids, serial->col_ids);
  }
}

TEST(EngineTest, SeedOverrideMatchesSerialSeed) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("t");
  SelectRequest request;
  request.table_id = "t";
  request.query = FilterQuery(3.0);
  request.seed = 12345;
  SelectResponse response = engine.Select(request);
  ASSERT_TRUE(response.status.ok());
  Result<SubTabView> serial =
      model->SelectForQuery(request.query, std::nullopt, std::nullopt, 12345);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(response.view->row_ids, serial->row_ids);
  EXPECT_EQ(response.view->col_ids, serial->col_ids);
}

TEST(EngineTest, IdenticalInFlightRequestsAreDeduplicated) {
  EngineOptions options;
  options.num_threads = 1;  // One worker, held busy by the barrier below, so
                            // the identical burst stays in flight.
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });

  SelectRequest repeated;
  repeated.table_id = "t";
  repeated.query = FilterQuery(10.0);
  std::vector<std::shared_future<SelectResponse>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine.SubmitSelect(repeated));
  gate.set_value();  // Release the worker; one selection runs.

  const SubTabView* view = futures[0].get().view.get();
  ASSERT_NE(view, nullptr);
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().status.ok());
    EXPECT_EQ(future.get().view.get(), view);  // One shared stored view.
  }
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.requests_coalesced, 15u);       // All but the first.
  EXPECT_EQ(stats.selection_cache.insertions, 1u);  // Exactly one execution.
  // Coalesced waiters complete with the shared computation: the in-flight
  // gauge (submitted - completed) returns to zero.
  EXPECT_EQ(stats.requests_submitted, 16u);
  EXPECT_EQ(stats.requests_completed, 16u);
}

TEST(EngineTest, SelectionCacheCountersAreAccurate) {
  EngineOptions options;
  options.num_threads = 2;
  options.selection_cache_capacity = 2;
  options.cache_shards = 1;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());

  // Sequential sync selects: counters are exact.
  engine.Select({.table_id = "t", .query = FilterQuery(1.0)});
  engine.Select({.table_id = "t", .query = FilterQuery(2.0)});
  CacheCounters counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.hits, 0u);

  engine.Select({.table_id = "t", .query = FilterQuery(1.0)});  // Hit.
  engine.Select({.table_id = "t", .query = FilterQuery(2.0)});  // Hit.
  counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.hits, 2u);

  engine.Select({.table_id = "t", .query = FilterQuery(3.0)});  // Evicts 1.0.
  counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.evictions, 1u);
  engine.Select({.table_id = "t", .query = FilterQuery(1.0)});  // Miss again.
  counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.misses, 4u);
  EXPECT_EQ(counters.entries, 2u);

  // Filter order does not defeat the cache.
  SpQuery ab;
  ab.filters = {Predicate::Num("a", CmpOp::kGe, 1.0),
                Predicate::Num("b", CmpOp::kLe, 90.0)};
  SpQuery ba;
  ba.filters = {ab.filters[1], ab.filters[0]};
  engine.Select({.table_id = "t", .query = ab});
  SelectResponse reordered = engine.Select({.table_id = "t", .query = ba});
  EXPECT_TRUE(reordered.from_cache);
}

TEST(EngineTest, DeterministicFailuresAreCachedAndCounted) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());
  SpQuery none = FilterQuery(1e12);  // Matches no rows -> InvalidArgument.
  SelectResponse first = engine.Select({.table_id = "t", .query = none});
  EXPECT_EQ(first.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(first.from_cache);
  SelectResponse repeat = engine.Select({.table_id = "t", .query = none});
  EXPECT_EQ(repeat.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(repeat.from_cache);  // No second table scan.
  EXPECT_EQ(engine.Stats().requests_failed, 2u);
  EXPECT_EQ(engine.Stats().requests_completed, 2u);
}

TEST(EngineTest, RegistryReusedAcrossTableIds) {
  ServingEngine engine;
  Table table = TinyTable();
  SubTabConfig config = TinyConfig();
  ASSERT_TRUE(engine.RegisterTable("alice", table, config).ok());
  ASSERT_TRUE(engine.RegisterTable("bob", table, config).ok());
  EXPECT_EQ(engine.GetModel("alice").get(), engine.GetModel("bob").get());
  EXPECT_EQ(engine.Stats().registry.fits, 1u);
  EXPECT_EQ(engine.Stats().tables, 2u);
}

// Engine replay produces the same capture statistics as the serial replay
// loop — the serving path changes latency, not results.
TEST(EngineTest, ReplayThroughEngineMatchesSerialReplay) {
  GeneratedDataset data = MakeCyber(2000);
  SubTabConfig config = TinyConfig();
  EngineOptions options;
  options.num_threads = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("cyber", data.table, config).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("cyber");

  SessionGeneratorOptions session_options;
  session_options.num_sessions = 8;
  session_options.seed = 11;
  std::vector<Session> sessions = GenerateSessions(data, session_options);

  EngineReplayResult through_engine =
      ReplayThroughEngine(engine, "cyber", sessions, 6, 4);

  SelectorFn serial_selector = [&model](const std::vector<size_t>& rows,
                                        const std::vector<size_t>& cols,
                                        size_t k, size_t l) {
    SelectionScope scope;
    scope.rows = rows;
    scope.cols = cols;
    scope.target_cols = model->target_column_ids();
    SubTabView view = model->SelectScoped(scope, k, l);
    return std::make_pair(view.row_ids, view.col_ids);
  };
  ReplayStats serial = ReplaySessions(data.table, model->preprocessed().binned(),
                                      sessions, 6, 4, serial_selector);

  EXPECT_EQ(through_engine.stats.steps_scored, serial.steps_scored);
  EXPECT_EQ(through_engine.stats.fragments_captured, serial.fragments_captured);
}

}  // namespace
}  // namespace subtab
