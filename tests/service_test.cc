// Tests for the serving subsystem (service/): the sharded LRU primitive,
// the thread pool, fingerprints, the model registry (eviction, single
// fit sharing, disk persistence), and the engine (concurrent results
// bit-identical to the serial path, in-flight dedup, cache counters).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <thread>

#include "subtab/core/fingerprint.h"
#include "subtab/eda/engine_replay.h"
#include "subtab/eda/session_generator.h"
#include "subtab/data/datasets.h"
#include "subtab/service/engine.h"
#include "subtab/service/lru_cache.h"
#include "subtab/service/model_registry.h"
#include "subtab/service/selection_cache.h"
#include "subtab/util/thread_pool.h"

namespace subtab {
namespace {

using service::CacheCounters;
using service::EngineOptions;
using service::ModelRegistry;
using service::ModelRegistryOptions;
using service::NormalizedQueryKey;
using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;
using service::ShardedLruCache;

/// A small table whose contents vary with `shift`, so distinct shifts give
/// distinct fingerprints. Fits in milliseconds with TinyConfig.
Table TinyTable(double shift = 0.0) {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (int i = 0; i < 60; ++i) {
    a.push_back(static_cast<double>(i) + shift);
    b.push_back(static_cast<double>(i % 7) * 2.5 - shift);
    c.push_back(i % 3 == 0 ? "x" : i % 3 == 1 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

SubTabConfig TinyConfig(uint64_t seed = 7) {
  SubTabConfig config;
  config.k = 4;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

SpQuery FilterQuery(double threshold) {
  SpQuery query;
  query.filters = {Predicate::Num("a", CmpOp::kGe, threshold)};
  return query;
}

// ------------------------------------------------------------- LRU cache --

struct IntHasher {
  uint64_t operator()(int key) const { return HashMix(static_cast<uint64_t>(key)); }
};

TEST(LruCacheTest, HitMissAndRecencyEviction) {
  ShardedLruCache<int, int, IntHasher> cache(2, /*num_shards=*/1);
  EXPECT_EQ(cache.Get(1), nullptr);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(2, std::make_shared<const int>(20));
  ASSERT_NE(cache.Get(1), nullptr);  // Refreshes 1; 2 is now LRU.
  EXPECT_EQ(*cache.Get(1), 10);
  cache.Put(3, std::make_shared<const int>(30));
  EXPECT_FALSE(cache.Contains(2));  // Evicted as least-recent.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));

  CacheCounters counters = cache.Stats();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.insertions, 3u);
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
}

TEST(LruCacheTest, PutReplacesValueWithoutEviction) {
  ShardedLruCache<int, int, IntHasher> cache(2, 1);
  cache.Put(1, std::make_shared<const int>(10));
  cache.Put(1, std::make_shared<const int>(11));
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Stats().evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

// ----------------------------------------------------------- Thread pool --

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    pool.Submit([&sum, i] { sum.fetch_add(i); });
  }
  pool.Wait();
  EXPECT_EQ(sum.load(), 5050);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.Wait();  // Must not block.
}

// ----------------------------------------------------------- Fingerprints --

TEST(FingerprintTest, StableAcrossIdenticalConstructions) {
  EXPECT_EQ(TableFingerprint(TinyTable(1.0)), TableFingerprint(TinyTable(1.0)));
  EXPECT_EQ(ConfigFingerprint(TinyConfig()), ConfigFingerprint(TinyConfig()));
}

TEST(FingerprintTest, DistinguishesNullFromZero) {
  // NaN input cells become nulls; they must not collide with literal 0.0.
  Result<Table> with_null =
      Table::Make({Column::Numeric("a", {1.0, std::nan(""), 3.0})});
  Result<Table> with_zero = Table::Make({Column::Numeric("a", {1.0, 0.0, 3.0})});
  ASSERT_TRUE(with_null.ok());
  ASSERT_TRUE(with_zero.ok());
  EXPECT_NE(TableFingerprint(*with_null), TableFingerprint(*with_zero));
}

TEST(FingerprintTest, SensitiveToContentAndConfig) {
  EXPECT_NE(TableFingerprint(TinyTable(1.0)), TableFingerprint(TinyTable(2.0)));
  SubTabConfig config = TinyConfig();
  SubTabConfig changed = TinyConfig();
  changed.seed = config.seed + 1;
  EXPECT_NE(ConfigFingerprint(config), ConfigFingerprint(changed));
  changed = TinyConfig();
  changed.binning.num_bins += 1;
  EXPECT_NE(ConfigFingerprint(config), ConfigFingerprint(changed));
}

TEST(FingerprintTest, NormalizedQueryKeyIgnoresFilterOrder) {
  SpQuery ab;
  ab.filters = {Predicate::Num("a", CmpOp::kGe, 1.0),
                Predicate::Str("c", CmpOp::kEq, "x")};
  SpQuery ba;
  ba.filters = {Predicate::Str("c", CmpOp::kEq, "x"),
                Predicate::Num("a", CmpOp::kGe, 1.0)};
  EXPECT_EQ(NormalizedQueryKey(ab), NormalizedQueryKey(ba));

  SpQuery limited = ab;
  limited.limit = 5;
  EXPECT_NE(NormalizedQueryKey(ab), NormalizedQueryKey(limited));
  SpQuery ordered = ab;
  ordered.order_by = "a";
  EXPECT_NE(NormalizedQueryKey(ab), NormalizedQueryKey(ordered));
}

TEST(FingerprintTest, NormalizedQueryKeyDeduplicatesRepeatedConjuncts) {
  // Conjunction is idempotent: "a AND a" selects exactly "a"'s rows, so the
  // sorted-but-duplicated filter list must produce the same cache key.
  SpQuery once;
  once.filters = {Predicate::Num("a", CmpOp::kGe, 1.0)};
  SpQuery twice;
  twice.filters = {once.filters[0], once.filters[0]};
  EXPECT_EQ(NormalizedQueryKey(once), NormalizedQueryKey(twice));
  // Interleaved duplicates among distinct conjuncts collapse too.
  SpQuery mixed;
  mixed.filters = {Predicate::Str("c", CmpOp::kEq, "x"), once.filters[0],
                   Predicate::Str("c", CmpOp::kEq, "x")};
  SpQuery clean;
  clean.filters = {once.filters[0], Predicate::Str("c", CmpOp::kEq, "x")};
  EXPECT_EQ(NormalizedQueryKey(mixed), NormalizedQueryKey(clean));
  // ...but a predicate differing only in literal must NOT collapse.
  SpQuery tighter;
  tighter.filters = {once.filters[0], Predicate::Num("a", CmpOp::kGe, 2.0)};
  EXPECT_NE(NormalizedQueryKey(once), NormalizedQueryKey(tighter));
}

TEST(FingerprintTest, ModelKeyRefreshGenerationChangesDigest) {
  ModelKey base{101, 202, 3};
  ModelKey upgraded{101, 202, 3, 1};
  EXPECT_NE(base.Digest(), upgraded.Digest());
  EXPECT_FALSE(base == upgraded);
  // Publication order: refresh breaks ties within a version; a newer
  // version beats any refresh generation of an older one.
  EXPECT_TRUE(upgraded.Supersedes(base));
  EXPECT_FALSE(base.Supersedes(upgraded));
  ModelKey next_version{101, 202, 4};
  EXPECT_TRUE(next_version.Supersedes(upgraded));
  EXPECT_FALSE(upgraded.Supersedes(next_version));
  // Generation 0 folds nothing in: digests of pre-refresh keys unchanged.
  EXPECT_EQ(base.Digest(), (ModelKey{101, 202, 3, 0}).Digest());
}

TEST(FingerprintTest, NormalizedQueryKeyIsLossless) {
  // Thresholds that render identically at display precision must not share
  // a cache key.
  EXPECT_NE(NormalizedQueryKey(FilterQuery(0.1231)),
            NormalizedQueryKey(FilterQuery(0.1234)));
  // A string literal containing quote/'&&' sequences must not collide with
  // the multi-predicate query it mimics.
  SpQuery crafted;
  crafted.filters = {Predicate::Str("c", CmpOp::kEq, "x' && d == 'y")};
  SpQuery two;
  two.filters = {Predicate::Str("c", CmpOp::kEq, "x"),
                 Predicate::Str("d", CmpOp::kEq, "y")};
  EXPECT_NE(NormalizedQueryKey(crafted), NormalizedQueryKey(two));
}

// --------------------------------------------------------- Model registry --

TEST(ModelRegistryTest, SecondSessionSharesOneFit) {
  ModelRegistry registry;
  Table table = TinyTable();
  SubTabConfig config = TinyConfig();
  auto first = registry.GetOrFit(table, config);
  ASSERT_TRUE(first.ok());
  auto second = registry.GetOrFit(table, config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // Same instance, one fit.
  EXPECT_EQ(registry.Stats().fits, 1u);
  EXPECT_EQ(registry.Stats().cache.hits, 1u);
}

TEST(ModelRegistryTest, LruEvictionAndRefit) {
  ModelRegistryOptions options;
  options.capacity = 2;
  options.num_shards = 1;
  ModelRegistry registry(options);
  SubTabConfig config = TinyConfig();
  ASSERT_TRUE(registry.GetOrFit(TinyTable(1.0), config).ok());
  ASSERT_TRUE(registry.GetOrFit(TinyTable(2.0), config).ok());
  ASSERT_TRUE(registry.GetOrFit(TinyTable(3.0), config).ok());  // Evicts 1.0.
  EXPECT_EQ(registry.Stats().fits, 3u);
  EXPECT_EQ(registry.Stats().cache.evictions, 1u);
  EXPECT_EQ(registry.Peek(MakeModelKey(TinyTable(1.0), config)), nullptr);
  // Re-opening the evicted table re-fits.
  ASSERT_TRUE(registry.GetOrFit(TinyTable(1.0), config).ok());
  EXPECT_EQ(registry.Stats().fits, 4u);
}

TEST(ModelRegistryTest, PersistsModelsAcrossRegistries) {
  // Fresh per-run scratch dir: a leftover artifact from a previous run would
  // turn the first registry's fit into a load.
  const std::string dir = ::testing::TempDir() + "/subtab_registry_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ModelRegistryOptions options;
  options.persist_dir = dir;
  Table table = TinyTable(5.0);
  SubTabConfig config = TinyConfig();

  ModelRegistry first(options);
  auto fitted = first.GetOrFit(table, config);
  ASSERT_TRUE(fitted.ok());
  EXPECT_EQ(first.Stats().fits, 1u);

  ModelRegistry second(options);  // Fresh process, same disk cache.
  auto loaded = second.GetOrFit(table, config);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(second.Stats().fits, 0u);
  EXPECT_EQ(second.Stats().loads, 1u);
  // The restored model selects identically.
  SubTabView a = (*fitted)->Select();
  SubTabView b = (*loaded)->Select();
  EXPECT_EQ(a.row_ids, b.row_ids);
  EXPECT_EQ(a.col_ids, b.col_ids);
}

// ----------------------------------------------------------------- Engine --

TEST(EngineTest, UnknownTableIsNotFound) {
  ServingEngine engine;
  SelectRequest request;
  request.table_id = "nope";
  SelectResponse response = engine.Select(request);
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.Stats().requests_failed, 1u);
}

TEST(EngineTest, ConcurrentSelectsMatchSerialPath) {
  EngineOptions options;
  options.num_threads = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("t");
  ASSERT_NE(model, nullptr);

  // 16 distinct queries (plus the whole table), all in flight at once.
  std::vector<SelectRequest> requests;
  for (int i = 0; i < 16; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query = FilterQuery(static_cast<double>(i));
    requests.push_back(request);
  }
  SelectRequest whole;
  whole.table_id = "t";
  requests.push_back(whole);

  std::vector<std::shared_future<SelectResponse>> futures;
  for (const SelectRequest& request : requests) {
    futures.push_back(engine.SubmitSelect(request));
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    SelectResponse response = futures[i].get();
    Result<SubTabView> serial = model->SelectForQuery(requests[i].query);
    ASSERT_TRUE(response.status.ok());
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(response.view->row_ids, serial->row_ids);
    EXPECT_EQ(response.view->col_ids, serial->col_ids);
  }
}

TEST(EngineTest, SeedOverrideMatchesSerialSeed) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("t");
  SelectRequest request;
  request.table_id = "t";
  request.query = FilterQuery(3.0);
  request.seed = 12345;
  SelectResponse response = engine.Select(request);
  ASSERT_TRUE(response.status.ok());
  Result<SubTabView> serial =
      model->SelectForQuery(request.query, std::nullopt, std::nullopt, 12345);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(response.view->row_ids, serial->row_ids);
  EXPECT_EQ(response.view->col_ids, serial->col_ids);
}

TEST(EngineTest, IdenticalInFlightRequestsAreDeduplicated) {
  EngineOptions options;
  options.num_threads = 1;  // One worker, held busy by the barrier below, so
                            // the identical burst stays in flight.
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });

  SelectRequest repeated;
  repeated.table_id = "t";
  repeated.query = FilterQuery(10.0);
  std::vector<std::shared_future<SelectResponse>> futures;
  for (int i = 0; i < 16; ++i) futures.push_back(engine.SubmitSelect(repeated));
  gate.set_value();  // Release the worker; one selection runs.

  const SubTabView* view = futures[0].get().view.get();
  ASSERT_NE(view, nullptr);
  for (auto& future : futures) {
    ASSERT_TRUE(future.get().status.ok());
    EXPECT_EQ(future.get().view.get(), view);  // One shared stored view.
  }
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.requests_coalesced, 15u);       // All but the first.
  EXPECT_EQ(stats.selection_cache.insertions, 1u);  // Exactly one execution.
  // Coalesced waiters complete with the shared computation: the in-flight
  // gauge (submitted - completed) returns to zero.
  EXPECT_EQ(stats.requests_submitted, 16u);
  EXPECT_EQ(stats.requests_completed, 16u);
}

TEST(EngineTest, SelectionCacheCountersAreAccurate) {
  EngineOptions options;
  options.num_threads = 2;
  options.selection_cache_capacity = 2;
  options.cache_shards = 1;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());

  // Sequential sync selects: counters are exact.
  engine.Select({.table_id = "t", .query = FilterQuery(1.0)});
  engine.Select({.table_id = "t", .query = FilterQuery(2.0)});
  CacheCounters counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.hits, 0u);

  engine.Select({.table_id = "t", .query = FilterQuery(1.0)});  // Hit.
  engine.Select({.table_id = "t", .query = FilterQuery(2.0)});  // Hit.
  counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.hits, 2u);

  engine.Select({.table_id = "t", .query = FilterQuery(3.0)});  // Evicts 1.0.
  counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.evictions, 1u);
  engine.Select({.table_id = "t", .query = FilterQuery(1.0)});  // Miss again.
  counters = engine.Stats().selection_cache;
  EXPECT_EQ(counters.misses, 4u);
  EXPECT_EQ(counters.entries, 2u);

  // Filter order does not defeat the cache.
  SpQuery ab;
  ab.filters = {Predicate::Num("a", CmpOp::kGe, 1.0),
                Predicate::Num("b", CmpOp::kLe, 90.0)};
  SpQuery ba;
  ba.filters = {ab.filters[1], ab.filters[0]};
  engine.Select({.table_id = "t", .query = ab});
  SelectResponse reordered = engine.Select({.table_id = "t", .query = ba});
  EXPECT_TRUE(reordered.from_cache);
}

TEST(EngineTest, DeterministicFailuresAreCachedAndCounted) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());
  SpQuery none = FilterQuery(1e12);  // Matches no rows -> InvalidArgument.
  SelectResponse first = engine.Select({.table_id = "t", .query = none});
  EXPECT_EQ(first.status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(first.from_cache);
  SelectResponse repeat = engine.Select({.table_id = "t", .query = none});
  EXPECT_EQ(repeat.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(repeat.from_cache);  // No second table scan.
  EXPECT_EQ(engine.Stats().requests_failed, 2u);
  EXPECT_EQ(engine.Stats().requests_completed, 2u);
}

TEST(EngineTest, RegistryReusedAcrossTableIds) {
  ServingEngine engine;
  Table table = TinyTable();
  SubTabConfig config = TinyConfig();
  ASSERT_TRUE(engine.RegisterTable("alice", table, config).ok());
  ASSERT_TRUE(engine.RegisterTable("bob", table, config).ok());
  EXPECT_EQ(engine.GetModel("alice").get(), engine.GetModel("bob").get());
  EXPECT_EQ(engine.Stats().registry.fits, 1u);
  EXPECT_EQ(engine.Stats().tables, 2u);
}

TEST(EngineTest, StagedPipelineMatchesBlockingExecutorAndSerial) {
  // The same request stream through (a) the staged pipeline with a
  // chunk-parallel scan, (b) the pre-refactor monolithic executor, and
  // (c) the serial SubTab path must produce bit-identical selections.
  Table table = TinyTable().Rechunked(13);  // Multi-chunk so sharding engages.
  EngineOptions staged_options;
  staged_options.num_threads = 4;
  staged_options.scan_threads = 2;
  ServingEngine staged(staged_options);
  EngineOptions blocking_options;
  blocking_options.num_threads = 4;
  blocking_options.staged_pipeline = false;
  ServingEngine blocking(blocking_options);
  ASSERT_TRUE(staged.RegisterTable("t", table, TinyConfig()).ok());
  ASSERT_TRUE(blocking.RegisterTable("t", table, TinyConfig()).ok());
  std::shared_ptr<const SubTab> model = staged.GetModel("t");

  std::vector<std::shared_future<SelectResponse>> staged_futures;
  std::vector<std::shared_future<SelectResponse>> blocking_futures;
  std::vector<SelectRequest> requests;
  for (int i = 0; i < 12; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query = FilterQuery(static_cast<double>(i * 4));
    requests.push_back(request);
  }
  for (const SelectRequest& request : requests) {
    staged_futures.push_back(staged.SubmitSelect(request));
    blocking_futures.push_back(blocking.SubmitSelect(request));
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    SelectResponse a = staged_futures[i].get();
    SelectResponse b = blocking_futures[i].get();
    Result<SubTabView> serial = model->SelectForQuery(requests[i].query);
    ASSERT_TRUE(a.status.ok() && b.status.ok() && serial.ok());
    EXPECT_EQ(a.view->row_ids, serial->row_ids);
    EXPECT_EQ(a.view->col_ids, serial->col_ids);
    EXPECT_EQ(b.view->row_ids, serial->row_ids);
    EXPECT_EQ(b.view->col_ids, serial->col_ids);
  }
  // Per-stage accounting ran: both stages saw wall time, every request got
  // a latency sample.
  const service::EngineStats stats = staged.Stats();
  EXPECT_GT(stats.pipeline.scan_seconds, 0.0);
  EXPECT_GT(stats.pipeline.select_seconds, 0.0);
  EXPECT_EQ(stats.pipeline.latency_count, requests.size());
  EXPECT_GT(stats.pipeline.latency_p50_ms, 0.0);
  EXPECT_GE(stats.pipeline.latency_p99_ms, stats.pipeline.latency_p50_ms);
}

TEST(EngineTest, AdmissionControlShedsInsteadOfQueueing) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_pending_per_tenant = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());

  // Hold the single worker so admitted requests stay pending.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });

  std::vector<std::shared_future<SelectResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    SelectRequest request;
    request.table_id = "t";
    request.query = FilterQuery(static_cast<double>(i));  // All distinct.
    futures.push_back(engine.SubmitSelect(request));
  }
  // The first two were admitted; the rest resolved immediately as shed.
  size_t shed = 0;
  for (int i = 2; i < 6; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[i].get().status.code(), StatusCode::kUnavailable);
    ++shed;
  }
  EXPECT_EQ(engine.Stats().pipeline.requests_shed, shed);

  gate.set_value();
  engine.Drain();
  // The admitted pair completed normally; capacity is released afterwards
  // (a fresh request is admitted again).
  EXPECT_TRUE(futures[0].get().status.ok());
  EXPECT_TRUE(futures[1].get().status.ok());
  SelectRequest again;
  again.table_id = "t";
  again.query = FilterQuery(100.0);  // Matches nothing -> InvalidArgument,
                                     // but admitted (not kUnavailable).
  EXPECT_EQ(engine.Select(again).status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Stats().pipeline.tenants_tracked, 0u);
  // Identical in-flight requests coalesce without consuming admission slots:
  // submit the same query max_pending+2 times against a held worker.
  std::promise<void> gate2;
  std::shared_future<void> opened2 = gate2.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened2] { opened2.wait(); });
  SelectRequest repeated;
  repeated.table_id = "t";
  repeated.query = FilterQuery(7.5);
  std::vector<std::shared_future<SelectResponse>> repeats;
  for (int i = 0; i < 4; ++i) repeats.push_back(engine.SubmitSelect(repeated));
  gate2.set_value();
  for (auto& f : repeats) EXPECT_TRUE(f.get().status.ok());
}

TEST(EngineTest, ToJsonEmitsPipelineGaugesAndShedCounters) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", TinyTable(), TinyConfig()).ok());
  engine.Select({.table_id = "t", .query = FilterQuery(1.0)});
  const std::string json = engine.Stats().ToJson();
  for (const char* field :
       {"\"pipeline\":{", "\"queue_depth\":", "\"workers_active\":",
        "\"worker_utilization\":", "\"tenants_tracked\":", "\"scan_seconds\":",
        "\"select_seconds\":", "\"latency_ms\":{", "\"p50\":", "\"p95\":",
        "\"p99\":", "\"shed\":", "\"deferred_upgrades\":",
        "\"upgrades_completed\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field << " in " << json;
  }
}

// Engine replay produces the same capture statistics as the serial replay
// loop — the serving path changes latency, not results.
TEST(EngineTest, ReplayThroughEngineMatchesSerialReplay) {
  GeneratedDataset data = MakeCyber(2000);
  SubTabConfig config = TinyConfig();
  EngineOptions options;
  options.num_threads = 4;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("cyber", data.table, config).ok());
  std::shared_ptr<const SubTab> model = engine.GetModel("cyber");

  SessionGeneratorOptions session_options;
  session_options.num_sessions = 8;
  session_options.seed = 11;
  std::vector<Session> sessions = GenerateSessions(data, session_options);

  EngineReplayResult through_engine =
      ReplayThroughEngine(engine, "cyber", sessions, 6, 4);

  SelectorFn serial_selector = [&model](const std::vector<size_t>& rows,
                                        const std::vector<size_t>& cols,
                                        size_t k, size_t l) {
    SelectionScope scope;
    scope.rows = rows;
    scope.cols = cols;
    scope.target_cols = model->target_column_ids();
    SubTabView view = model->SelectScoped(scope, k, l);
    return std::make_pair(view.row_ids, view.col_ids);
  };
  ReplayStats serial = ReplaySessions(data.table, model->preprocessed().binned(),
                                      sessions, 6, 4, serial_selector);

  EXPECT_EQ(through_engine.stats.steps_scored, serial.steps_scored);
  EXPECT_EQ(through_engine.stats.fragments_captured, serial.fragments_captured);
}

}  // namespace
}  // namespace subtab
