// Tests for the streaming ingestion subsystem (stream/ + the incremental
// seams it grew in binning/, embed/, core/ and service/): versioned
// snapshots and chained fingerprints, frozen-spec incremental binning with
// drift counters, the refresh policy, incremental SGNS, the StreamSession
// facade (fold-in quality vs full refit, version isolation), and the
// engine's streaming path (republish, cache invalidation, concurrent
// append+select — the TSan target).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "subtab/binning/incremental.h"
#include "subtab/core/fingerprint.h"
#include "subtab/data/datasets.h"
#include "subtab/metrics/combined.h"
#include "subtab/rules/miner.h"
#include "subtab/service/engine.h"
#include "subtab/stream/refresh_policy.h"
#include "subtab/stream/stream_session.h"
#include "subtab/stream/streaming_table.h"

namespace subtab {
namespace {

using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;
using stream::DriftSnapshot;
using stream::RefreshAction;
using stream::RefreshEvent;
using stream::RefreshPolicyOptions;
using stream::StreamSession;
using stream::StreamSessionOptions;
using stream::StreamingTable;
using stream::TableVersion;

/// Deterministic little table: numeric a in [0, n), numeric b cycling,
/// categorical c over {x, y, z}, starting at row `offset`.
Table LittleTable(size_t n, size_t offset = 0) {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (size_t i = offset; i < offset + n; ++i) {
    a.push_back(static_cast<double>(i % 60));
    b.push_back(static_cast<double>(i % 7) * 2.5);
    c.push_back(i % 3 == 0 ? "x" : i % 3 == 1 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

SubTabConfig LittleConfig(uint64_t seed = 7) {
  SubTabConfig config;
  config.k = 4;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

// -------------------------------------------------------- StreamingTable --

TEST(StreamingTableTest, VersionsAndChainedFingerprints) {
  auto stream = StreamingTable::Open(LittleTable(30));
  ASSERT_TRUE(stream.ok());
  const TableVersion v0 = (*stream)->Current();
  EXPECT_EQ(v0.version, 0u);
  EXPECT_EQ(v0.num_rows, 30u);
  EXPECT_EQ(v0.fingerprint, TableFingerprint(LittleTable(30)));

  auto v1 = (*stream)->Append(LittleTable(10, 30));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->version, 1u);
  EXPECT_EQ(v1->num_rows, 40u);
  EXPECT_EQ(v1->delta_rows, 10u);
  EXPECT_NE(v1->fingerprint, v0.fingerprint);

  // A parallel stream fed the same base + batches agrees on every version's
  // fingerprint (the cross-process registry-sharing property).
  auto replay = StreamingTable::Open(LittleTable(30));
  ASSERT_TRUE(replay.ok());
  auto r1 = (*replay)->Append(LittleTable(10, 30));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->fingerprint, v1->fingerprint);
  EXPECT_EQ(r1->delta_fp, v1->delta_fp);
}

TEST(StreamingTableTest, AppendOrderChangesTheChain) {
  auto ab = StreamingTable::Open(LittleTable(20));
  auto ba = StreamingTable::Open(LittleTable(20));
  ASSERT_TRUE(ab.ok() && ba.ok());
  ASSERT_TRUE((*ab)->Append(LittleTable(5, 100)).ok());
  auto ab2 = (*ab)->Append(LittleTable(5, 200));
  ASSERT_TRUE((*ba)->Append(LittleTable(5, 200)).ok());
  auto ba2 = (*ba)->Append(LittleTable(5, 100));
  ASSERT_TRUE(ab2.ok() && ba2.ok());
  EXPECT_NE(ab2->fingerprint, ba2->fingerprint);
}

TEST(StreamingTableTest, SliceFingerprintMatchesStandaloneBatch) {
  // The batch's hash must equal the hash of the same rows inside the grown
  // table, even though the categorical dictionary codes differ.
  std::vector<std::string> base_cats = {"x", "x", "y"};
  std::vector<std::string> batch_cats = {"z", "y", "w"};  // w, z unseen/reordered.
  Result<Table> base = Table::Make({Column::Categorical("c", base_cats)});
  Result<Table> batch = Table::Make({Column::Categorical("c", batch_cats)});
  ASSERT_TRUE(base.ok() && batch.ok());
  auto stream = StreamingTable::Open(std::move(*base));
  ASSERT_TRUE(stream.ok());
  auto v1 = (*stream)->Append(*batch);
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->delta_fp, TableSliceFingerprint(*batch, 0, batch->num_rows()));
}

TEST(StreamingTableTest, RejectsSchemaMismatchAndEmptyBatch) {
  auto stream = StreamingTable::Open(LittleTable(10));
  ASSERT_TRUE(stream.ok());
  Result<Table> renamed = Table::Make({Column::Numeric("other", {1.0})});
  ASSERT_TRUE(renamed.ok());
  EXPECT_FALSE((*stream)->Append(*renamed).ok());
  Result<Table> empty = Table::Make({Column::Numeric("a", {}),
                                     Column::Numeric("b", {}),
                                     Column::Categorical("c", {})});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE((*stream)->Append(*empty).ok());
  EXPECT_EQ((*stream)->version(), 0u);  // Nothing was published.
}

TEST(StreamingTableTest, SnapshotsAreIsolatedFromLaterAppends) {
  auto stream = StreamingTable::Open(LittleTable(12));
  ASSERT_TRUE(stream.ok());
  const TableVersion v0 = (*stream)->Current();
  ASSERT_TRUE((*stream)->Append(LittleTable(6, 12)).ok());
  EXPECT_EQ(v0.table->num_rows(), 12u);  // Held snapshot unchanged.
  EXPECT_EQ((*stream)->Current().num_rows, 18u);
}

TEST(StreamingTableTest, AppendSharesParentChunks) {
  // Zero-copy snapshots: every append adds exactly one chunk per column and
  // shares the parent's chunks by pointer identity.
  auto stream = StreamingTable::Open(LittleTable(20));
  ASSERT_TRUE(stream.ok());
  const TableVersion v0 = (*stream)->Current();
  EXPECT_EQ(v0.table->num_chunks(), 1u);
  ASSERT_TRUE((*stream)->Append(LittleTable(5, 20)).ok());
  ASSERT_TRUE((*stream)->Append(LittleTable(5, 25)).ok());
  const TableVersion v2 = (*stream)->Current();
  EXPECT_EQ(v2.table->num_chunks(), 3u);
  for (size_t c = 0; c < v0.table->num_columns(); ++c) {
    EXPECT_EQ(v2.table->column(c).chunks()[0].get(),
              v0.table->column(c).chunks()[0].get());
  }
}

// ---------------------------------------------------- IncrementalBinner --

TEST(IncrementalBinnerTest, MatchesFullRebinWithoutDrift) {
  // Base rows 0..59 span the full value universe (a = i % 60), so the 30
  // appended rows of `full` repeat in-range values: zero drift expected.
  const Table base = LittleTable(60);
  const Table full = LittleTable(90);
  BinningOptions options;
  const TableBinning binning = TableBinning::Compute(base, options);
  BinnedTable incremental = BinnedTable::FromTable(base, binning);
  IncrementalBinner binner(base, binning);
  binner.AppendRows(full, 60, &incremental);

  // Every appended cell tokenizes exactly as a full re-bin (against the same
  // frozen spec) would tokenize it.
  const BinnedTable rebinned = BinnedTable::FromTable(full, binning);
  ASSERT_EQ(incremental.num_rows(), rebinned.num_rows());
  for (size_t r = 0; r < rebinned.num_rows(); ++r) {
    for (size_t c = 0; c < rebinned.num_columns(); ++c) {
      ASSERT_EQ(incremental.token(r, c), rebinned.token(r, c));
    }
  }
  EXPECT_EQ(binner.rows_appended(), 30u);
  EXPECT_EQ(binner.OutOfRangeRate(), 0.0);
  EXPECT_EQ(binner.NewCategoryRate(), 0.0);
}

TEST(IncrementalBinnerTest, CountsOutOfRangeAndNewCategories) {
  std::vector<double> base_vals = {1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<std::string> base_cats = {"x", "y", "x", "y", "x"};
  Result<Table> base = Table::Make({Column::Numeric("n", base_vals),
                                    Column::Categorical("c", base_cats)});
  ASSERT_TRUE(base.ok());
  const TableBinning binning = TableBinning::Compute(*base, BinningOptions{});
  BinnedTable binned = BinnedTable::FromTable(*base, binning);
  IncrementalBinner binner(*base, binning);

  // Append via a stream so dictionary codes grow like production.
  auto stream = StreamingTable::Open(*base);
  ASSERT_TRUE(stream.ok());
  std::vector<double> batch_vals = {2.5, 100.0, -7.0};  // 2 outside [1, 5].
  std::vector<std::string> batch_cats = {"x", "zz", "y"};  // 1 unseen.
  Result<Table> batch = Table::Make({Column::Numeric("n", batch_vals),
                                     Column::Categorical("c", batch_cats)});
  ASSERT_TRUE(batch.ok());
  auto v1 = (*stream)->Append(*batch);
  ASSERT_TRUE(v1.ok());
  binner.AppendRows(*v1->table, base->num_rows(), &binned);

  EXPECT_EQ(binner.drift()[0].out_of_range, 2u);
  EXPECT_EQ(binner.drift()[1].new_categories, 1u);
  EXPECT_DOUBLE_EQ(binner.OutOfRangeRate(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(binner.NewCategoryRate(), 1.0 / 3.0);
  // The base column had both categories under max_cat_bins, so there is no
  // "other" bin; the unseen category degrades to the null bin.
  const Token zz = binned.token(6, 1);
  EXPECT_EQ(TokenBin(zz), binning.column(1).null_bin());
  // Out-of-range numerics still land in the unbounded edge bins.
  EXPECT_EQ(TokenBin(binned.token(6, 0)),
            binning.column(0).BinOfNumeric(100.0));
  binner.ResetDrift();
  EXPECT_EQ(binner.OutOfRangeRate(), 0.0);
}

// ------------------------------------------------------- Refresh policy --

TEST(RefreshPolicyTest, EscalatesByDriftStalenessAndLag) {
  RefreshPolicyOptions options;  // Defaults: oor/newcat 0.10, budget 0.5,
                                 // incremental 0.1, min drift rows 64.
  DriftSnapshot drift;
  drift.fitted_rows = 1000;

  drift.rows_since_refit = 50;
  drift.rows_since_refresh = 50;
  EXPECT_EQ(DecideRefresh(options, drift), RefreshAction::kFoldIn);

  drift.rows_since_refresh = 150;  // > 10% of fitted rows.
  EXPECT_EQ(DecideRefresh(options, drift), RefreshAction::kIncremental);

  drift.rows_since_refit = 600;  // > 50% of fitted rows.
  EXPECT_EQ(DecideRefresh(options, drift), RefreshAction::kFullRefit);

  // Drift rates trump everything once enough rows accumulated...
  drift.rows_since_refit = 100;
  drift.rows_since_refresh = 0;
  drift.out_of_range_rate = 0.5;
  EXPECT_EQ(DecideRefresh(options, drift), RefreshAction::kFullRefit);
  // ...but not on a tiny sample.
  drift.rows_since_refit = 10;
  EXPECT_EQ(DecideRefresh(options, drift), RefreshAction::kFoldIn);
}

TEST(RefreshPolicyTest, BackgroundLagBudgetAndEscalation) {
  RefreshPolicyOptions options;  // max_background_lag defaults to 0.3.
  DriftSnapshot drift;
  drift.fitted_rows = 1000;
  drift.rows_since_refresh = 250;
  EXPECT_FALSE(stream::BackgroundLagExceeded(options, drift));
  drift.rows_since_refresh = 350;
  EXPECT_TRUE(stream::BackgroundLagExceeded(options, drift));
  drift.fitted_rows = 0;  // No fit baseline: never force inline.
  EXPECT_FALSE(stream::BackgroundLagExceeded(options, drift));

  using stream::EscalateRefresh;
  EXPECT_EQ(EscalateRefresh(RefreshAction::kFoldIn, RefreshAction::kIncremental),
            RefreshAction::kIncremental);
  EXPECT_EQ(EscalateRefresh(RefreshAction::kFullRefit, RefreshAction::kIncremental),
            RefreshAction::kFullRefit);
  EXPECT_EQ(EscalateRefresh(RefreshAction::kFoldIn, RefreshAction::kFoldIn),
            RefreshAction::kFoldIn);
}

// ------------------------------------------------- Incremental training --

TEST(Word2VecTest, ContinueTrainingIsDeterministicAndMovesVectors) {
  const Table table = LittleTable(50);
  const BinnedTable binned = BinnedTable::Compute(table);
  Rng rng(3);
  const Corpus corpus = Corpus::Build(binned, CorpusOptions{}, &rng);
  Word2VecOptions options;
  options.dim = 8;
  options.epochs = 1;
  const Word2VecModel trained = Word2VecModel::Train(corpus, options);

  Word2VecModel continued_a = trained;
  Word2VecModel continued_b = trained;
  continued_a.ContinueTraining(corpus, options);
  continued_b.ContinueTraining(corpus, options);

  bool moved = false;
  for (size_t w = 0; w < trained.vocab_size(); ++w) {
    auto before = trained.vector(w);
    auto a = continued_a.vector(w);
    auto b = continued_b.vector(w);
    for (size_t d = 0; d < trained.dim(); ++d) {
      EXPECT_EQ(a[d], b[d]);  // Same inputs, same result.
      if (a[d] != before[d]) moved = true;
    }
  }
  EXPECT_TRUE(moved);  // Training actually updated something.
}

// --------------------------------------------------------- StreamSession --

StreamSessionOptions FoldInOnlyOptions(SubTabConfig config) {
  StreamSessionOptions options;
  options.config = std::move(config);
  options.policy.max_out_of_range_rate = 1.0;
  options.policy.max_new_category_rate = 1.0;
  options.policy.staleness_budget = 1e9;
  options.policy.incremental_threshold = 1e9;
  return options;
}

TEST(StreamSessionTest, PublishesVersionedModelsAndKeys) {
  auto session = StreamSession::Open(LittleTable(40),
                                     FoldInOnlyOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  const ModelKey k0 = (*session)->model_key();
  EXPECT_EQ(k0.version, 0u);

  ASSERT_TRUE((*session)->Append(LittleTable(10, 40)).ok());
  const ModelKey k1 = (*session)->model_key();
  EXPECT_EQ(k1.version, 1u);
  EXPECT_NE(k1.table_fp, k0.table_fp);
  EXPECT_EQ(k1.config_fp, k0.config_fp);
  EXPECT_NE(k1.Digest(), k0.Digest());

  // The published model serves the appended rows; the spec stayed frozen.
  std::shared_ptr<const SubTab> model = (*session)->model();
  EXPECT_EQ(model->table().num_rows(), 50u);
  EXPECT_EQ(model->preprocessed().binned().num_rows(), 50u);
  // Double residency gone: the model holds the snapshot's table — the very
  // same object, not a copy.
  EXPECT_EQ(model->shared_table().get(),
            (*session)->current_version().table.get());
  const auto stats = (*session)->Stats();
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.fold_ins, 1u);
  EXPECT_EQ(stats.full_refits, 0u);
}

TEST(StreamSessionTest, StalenessBudgetTriggersRefitAndResetsCounters) {
  StreamSessionOptions options;
  options.config = LittleConfig();
  options.policy.staleness_budget = 0.25;
  options.policy.incremental_threshold = 1e9;
  options.policy.min_rows_for_drift = 1u << 30;
  auto session = StreamSession::Open(LittleTable(40), std::move(options));
  ASSERT_TRUE(session.ok());

  // +8 rows: 20% of 40 fitted rows, under budget -> fold-in.
  auto e1 = (*session)->Append(LittleTable(8, 40));
  ASSERT_TRUE(e1.ok());
  EXPECT_EQ(e1->action, RefreshAction::kFoldIn);
  // +8 more: 40% since refit -> budget exhausted, full refit over 56 rows.
  auto e2 = (*session)->Append(LittleTable(8, 48));
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2->action, RefreshAction::kFullRefit);
  const auto stats = (*session)->Stats();
  EXPECT_EQ(stats.full_refits, 1u);
  EXPECT_EQ(stats.fitted_rows, 56u);
  EXPECT_EQ(stats.rows_since_refit, 0u);
}

TEST(StreamSessionTest, FoldInSelectionQualityNearFullRefit) {
  // The acceptance check of the subsystem: ten batches folded in with zero
  // retraining must select sub-tables whose combined score (coverage +
  // diversity, scored under the *refit* model's rules) stays within
  // tolerance of a full refit on the final table. Deterministic: every
  // stage is seeded.
  constexpr double kTolerance = 0.7;
  GeneratedDataset data = MakeCyber(2000);
  std::vector<size_t> base_rows(1000);
  for (size_t i = 0; i < base_rows.size(); ++i) base_rows[i] = i;
  const Table base = data.table.TakeRows(base_rows);

  SubTabConfig config = LittleConfig();
  config.k = 10;
  config.l = 7;
  config.embedding.dim = 16;
  config.embedding.epochs = 2;
  auto session = StreamSession::Open(base, FoldInOnlyOptions(config));
  ASSERT_TRUE(session.ok());
  for (size_t b = 0; b < 10; ++b) {
    std::vector<size_t> rows(100);
    for (size_t i = 0; i < rows.size(); ++i) rows[i] = 1000 + b * 100 + i;
    ASSERT_TRUE((*session)->Append(data.table.TakeRows(rows)).ok());
  }
  ASSERT_EQ((*session)->Stats().fold_ins, 10u);

  Result<SubTab> refit = SubTab::Fit(data.table, config);
  ASSERT_TRUE(refit.ok());
  const RuleSet rules =
      MineRules(refit->preprocessed().binned(), RuleMiningOptions{});
  const CoverageEvaluator evaluator(refit->preprocessed().binned(), rules);
  const SubTabView fold_in_view = (*session)->model()->Select();
  const SubTabView refit_view = refit->Select();
  const double fold_in_score =
      ScoreSubTable(evaluator, fold_in_view.row_ids, fold_in_view.col_ids)
          .combined;
  const double refit_score =
      ScoreSubTable(evaluator, refit_view.row_ids, refit_view.col_ids).combined;
  ASSERT_GT(refit_score, 0.0);
  EXPECT_GE(fold_in_score, kTolerance * refit_score)
      << "fold-in " << fold_in_score << " vs refit " << refit_score;
}

// ------------------------------------------------------ Engine streaming --

TEST(EngineStreamTest, AppendRepublishesAndInvalidatesOnlyThatStream) {
  ServingEngine engine;
  auto session = StreamSession::Open(LittleTable(40),
                                     FoldInOnlyOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());
  ASSERT_TRUE(engine.RegisterTable("frozen", LittleTable(30),
                                   LittleConfig(9)).ok());

  // Warm both tables' caches.
  SelectRequest live{.table_id = "live", .query = {}, .k = {}, .l = {}, .seed = {}};
  SelectRequest frozen{.table_id = "frozen", .query = {}, .k = {}, .l = {}, .seed = {}};
  ASSERT_TRUE(engine.Select(live).status.ok());
  ASSERT_TRUE(engine.Select(frozen).status.ok());
  EXPECT_TRUE(engine.Select(live).from_cache);

  auto event = engine.Append("live", LittleTable(10, 40));
  ASSERT_TRUE(event.ok());
  EXPECT_EQ(event->version, 1u);

  // The stream's cached selection was invalidated (recomputed over the new
  // version, 50 rows); the frozen table's cache entry survived.
  SelectResponse relive = engine.Select(live);
  ASSERT_TRUE(relive.status.ok());
  EXPECT_FALSE(relive.from_cache);
  EXPECT_EQ(engine.GetModel("live")->table().num_rows(), 50u);
  EXPECT_TRUE(engine.Select(frozen).from_cache);

  const auto stats = engine.Stats();
  EXPECT_EQ(stats.streaming.streams, 1u);
  EXPECT_EQ(stats.streaming.appends, 1u);
  EXPECT_GE(stats.streaming.cache_invalidations, 1u);
  EXPECT_EQ(stats.tables, 2u);
  // The superseded stream version was erased from the registry: only the
  // stream's live version and the frozen table remain resident, so a busy
  // stream can never churn static tables out of the LRU.
  EXPECT_EQ(stats.registry.cache.entries, 2u);

  // Appends to non-streams are rejected.
  EXPECT_FALSE(engine.Append("frozen", LittleTable(5, 0)).ok());
  EXPECT_FALSE(engine.Append("absent", LittleTable(5, 0)).ok());
}

TEST(EngineStreamTest, SupersedeSparesV0KeySharedWithStaticTable) {
  // A static registration of the stream's base (same table, same config)
  // shares the version-0 key by design. Superseding the stream's v0 must
  // not sweep the static table's warm selections or its registry entry.
  ServingEngine engine;
  auto session = StreamSession::Open(LittleTable(40),
                                     FoldInOnlyOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());
  ASSERT_TRUE(
      engine.RegisterTable("static", LittleTable(40), LittleConfig()).ok());
  SelectRequest stat{.table_id = "static", .query = {}, .k = {}, .l = {}, .seed = {}};
  ASSERT_TRUE(engine.Select(stat).status.ok());

  ASSERT_TRUE(engine.Append("live", LittleTable(10, 40)).ok());
  EXPECT_TRUE(engine.Select(stat).from_cache);  // Warm selection survived.
  const auto stats = engine.Stats();
  EXPECT_EQ(stats.registry.cache.entries, 2u);  // Shared v0 + stream v1.
  EXPECT_EQ(stats.streaming.cache_invalidations, 0u);
}

TEST(EngineStreamTest, StreamBoundUnderTwoIdsRepublishesBoth) {
  ServingEngine engine;
  auto session = StreamSession::Open(LittleTable(40),
                                     FoldInOnlyOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("alice", *session).ok());
  ASSERT_TRUE(engine.RegisterStream("bob", *session).ok());
  ASSERT_TRUE(engine.Append("alice", LittleTable(10, 40)).ok());
  EXPECT_EQ(engine.GetModel("alice")->table().num_rows(), 50u);
  EXPECT_EQ(engine.GetModel("bob")->table().num_rows(), 50u);
  EXPECT_EQ(engine.GetModel("alice").get(), engine.GetModel("bob").get());
  EXPECT_EQ(engine.Stats().streaming.streams, 1u);  // Deduplicated.
}

TEST(EngineStreamTest, StatsToJsonContainsEverySection) {
  ServingEngine engine;
  const std::string json = engine.Stats().ToJson();
  for (const char* key : {"\"tables\"", "\"requests\"", "\"selection_cache\"",
                          "\"registry\"", "\"streaming\"", "\"fold_ins\"",
                          "\"memory\"", "\"resident_bytes\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << json;
  }
}

// The TSan job runs this binary: appends racing selects across workers must
// be clean, with every response served by a complete, consistent version.
TEST(EngineStreamTest, ConcurrentAppendAndSelectServeConsistentVersions) {
  service::EngineOptions options;
  options.num_threads = 4;
  ServingEngine engine(options);
  auto session = StreamSession::Open(LittleTable(60),
                                     FoldInOnlyOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());

  constexpr size_t kBatches = 8;
  std::atomic<bool> done{false};
  std::atomic<size_t> selects_ok{0};
  std::vector<std::thread> selectors;
  for (int t = 0; t < 3; ++t) {
    selectors.emplace_back([&engine, &done, &selects_ok, t] {
      uint64_t seed = 1000 + t;
      // do-while: at least one select per thread even if every append
      // lands before the selectors get scheduled.
      do {
        SelectRequest request;
        request.table_id = "live";
        request.seed = ++seed;  // Distinct seeds dodge the selection cache.
        SelectResponse response = engine.Select(request);
        ASSERT_TRUE(response.status.ok());
        // A consistent version: every selected row exists in the response's
        // own materialized view.
        ASSERT_EQ(response.view->table.num_rows(),
                  response.view->row_ids.size());
        selects_ok.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_relaxed));
    });
  }
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE(engine.Append("live", LittleTable(10, 60 + b * 10)).ok());
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : selectors) t.join();

  EXPECT_EQ(engine.GetModel("live")->table().num_rows(), 60 + kBatches * 10);
  EXPECT_GT(selects_ok.load(), 0u);
  EXPECT_EQ(engine.Stats().streaming.appends, kBatches);

  // Double residency gone, visible in the stats: the stream's snapshot and
  // the served model share one Table object (and all versions share chunks),
  // so the deduplicated resident bytes are strictly below the per-binding
  // logical bytes.
  const service::MemoryStats memory = engine.Stats().memory;
  EXPECT_GT(memory.logical_bytes, 0u);
  EXPECT_LT(memory.resident_bytes, memory.logical_bytes);
  EXPECT_EQ(memory.shared_saved_bytes,
            memory.logical_bytes - memory.resident_bytes);
  EXPECT_EQ(memory.tables, 1u);  // Model table == stream snapshot table.
}

// Append-while-select over zero-copy chunked snapshots: selectors hold old
// versions and SCAN their rows (reading the shared chunks) while the
// appender publishes new versions that share those same chunks — the data
// race the immutable-chunk design must not have (TSan runs this binary).
TEST(EngineStreamTest, ConcurrentAppendWhileScanningSharedChunks) {
  auto session = StreamSession::Open(LittleTable(80),
                                     FoldInOnlyOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());

  constexpr size_t kBatches = 10;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> rows_scanned{0};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([&session, &done, &rows_scanned] {
      do {
        // Hold one version's table across the scan; later appends must not
        // disturb it even though they share its chunks.
        std::shared_ptr<const SubTab> model = (*session)->model();
        const Table& table = model->table();
        double checksum = 0.0;
        size_t non_null = 0;
        for (size_t c = 0; c < table.num_columns(); ++c) {
          const Column& col = table.column(c);
          col.VisitRows(0, col.size(),
                        [&](size_t, const Chunk& chunk, size_t local) {
            if (chunk.is_null(local)) return;
            ++non_null;
            checksum += col.is_numeric()
                            ? chunk.num_value(local)
                            : static_cast<double>(chunk.cat_code(local));
          });
        }
        ASSERT_GT(non_null, 0u);
        ASSERT_TRUE(std::isfinite(checksum));
        // Query the same snapshot: predicate scans + gather over chunks.
        SpQuery query;
        query.filters = {Predicate::Num("a", CmpOp::kLt, 30.0)};
        Result<SubTabView> view = model->SelectForQuery(query);
        ASSERT_TRUE(view.ok());
        rows_scanned.fetch_add(non_null, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_relaxed));
    });
  }
  for (size_t b = 0; b < kBatches; ++b) {
    ASSERT_TRUE((*session)->Append(LittleTable(10, 80 + b * 10)).ok());
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : scanners) t.join();

  EXPECT_GT(rows_scanned.load(), 0u);
  EXPECT_EQ((*session)->current_version().table->num_chunks(), kBatches + 1);
}

// ---------------------------------------------------- Background refresh --

/// Background mode with thresholds forcing an incremental upgrade on every
/// append, and a lag budget so large the appender never trains inline.
StreamSessionOptions BackgroundOptions(SubTabConfig config) {
  StreamSessionOptions options;
  options.config = std::move(config);
  options.background_refresh = true;
  options.policy.max_out_of_range_rate = 1.0;
  options.policy.max_new_category_rate = 1.0;
  options.policy.staleness_budget = 1e9;
  options.policy.incremental_threshold = 0.0;  // Always wants an upgrade.
  options.policy.max_background_lag = 1e9;     // Never forces inline.
  return options;
}

TEST(BackgroundRefreshTest, AppendPublishesFoldInThenUpgradesSameVersion) {
  auto session = StreamSession::Open(LittleTable(60),
                                     BackgroundOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  const std::shared_ptr<const SubTab> before = (*session)->model();

  Result<RefreshEvent> event = (*session)->Append(LittleTable(20, 60));
  ASSERT_TRUE(event.ok());
  // The appender folded in and deferred the training.
  EXPECT_EQ(event->action, RefreshAction::kFoldIn);
  EXPECT_TRUE(event->upgrade_deferred);
  EXPECT_EQ(event->deferred_action, RefreshAction::kIncremental);
  EXPECT_EQ(event->key.version, 1u);
  EXPECT_EQ(event->key.refresh, 0u);
  // The fold-in publication was immediately servable with all 80 rows.
  EXPECT_EQ(event->model->table().num_rows(), 80u);

  (*session)->WaitForUpgrades();
  // The upgrade republished the SAME content version at generation 1 with a
  // retrained (distinct) model object.
  const ModelKey upgraded = (*session)->model_key();
  EXPECT_EQ(upgraded.version, 1u);
  EXPECT_EQ(upgraded.refresh, 1u);
  EXPECT_TRUE(upgraded.Supersedes(event->key));
  EXPECT_NE(upgraded.Digest(), event->key.Digest());
  const std::shared_ptr<const SubTab> after = (*session)->model();
  EXPECT_NE(after.get(), event->model.get());
  EXPECT_NE(after.get(), before.get());
  EXPECT_EQ(after->table().num_rows(), 80u);

  const stream::StreamStats stats = (*session)->Stats();
  EXPECT_EQ(stats.appends, 1u);
  EXPECT_EQ(stats.fold_ins, 1u);
  EXPECT_EQ(stats.deferred_upgrades, 1u);
  EXPECT_EQ(stats.upgrades_completed, 1u);
  EXPECT_EQ(stats.incremental_refreshes, 1u);
  EXPECT_EQ(stats.refresh_generation, 1u);
}

TEST(BackgroundRefreshTest, ExhaustedLagBudgetRunsInline) {
  StreamSessionOptions options = BackgroundOptions(LittleConfig());
  options.policy.max_background_lag = 0.0;  // Budget exhausted immediately.
  auto session = StreamSession::Open(LittleTable(60), options);
  ASSERT_TRUE(session.ok());
  Result<RefreshEvent> event = (*session)->Append(LittleTable(20, 60));
  ASSERT_TRUE(event.ok());
  // The appender had to train inline: no deferral, the publication already
  // carries the incremental refresh.
  EXPECT_EQ(event->action, RefreshAction::kIncremental);
  EXPECT_FALSE(event->upgrade_deferred);
  EXPECT_EQ(event->key.refresh, 0u);
  EXPECT_EQ((*session)->Stats().incremental_refreshes, 1u);
  EXPECT_EQ((*session)->Stats().deferred_upgrades, 0u);
}

TEST(BackgroundRefreshTest, UpgradeMatchesWhatInlineModeWouldHaveTrained) {
  // Determinism across scheduling: the background upgrade of version 1 must
  // produce the exact selections the inline incremental refresh produces,
  // because TrainRefresh is a pure function of (version, base model, seed).
  auto inline_session = StreamSession::Open(
      LittleTable(60), [&] {
        StreamSessionOptions o = BackgroundOptions(LittleConfig());
        o.background_refresh = false;
        return o;
      }());
  auto background_session = StreamSession::Open(
      LittleTable(60), BackgroundOptions(LittleConfig()));
  ASSERT_TRUE(inline_session.ok() && background_session.ok());

  ASSERT_TRUE((*inline_session)->Append(LittleTable(20, 60)).ok());
  ASSERT_TRUE((*background_session)->Append(LittleTable(20, 60)).ok());
  (*background_session)->WaitForUpgrades();

  const SubTabView inline_view = (*inline_session)->model()->Select();
  const SubTabView upgraded_view = (*background_session)->model()->Select();
  EXPECT_EQ(inline_view.row_ids, upgraded_view.row_ids);
  EXPECT_EQ(inline_view.col_ids, upgraded_view.col_ids);
}

TEST(EngineStreamTest, BackgroundUpgradeRepublishesBoundIds) {
  service::EngineOptions engine_options;
  engine_options.num_threads = 2;
  ServingEngine engine(engine_options);
  auto session = StreamSession::Open(LittleTable(60),
                                     BackgroundOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("bg", *session).ok());

  // Appending THROUGH THE SESSION (not engine.Append) must still republish:
  // the publish listener carries every publication to the engine.
  ASSERT_TRUE((*session)->Append(LittleTable(20, 60)).ok());
  EXPECT_EQ(engine.GetModel("bg")->table().num_rows(), 80u);

  (*session)->WaitForUpgrades();
  // The upgrade's republish swapped the binding to the generation-1 model
  // and swept the fold-in generation's cache/registry entries.
  EXPECT_EQ(engine.GetModel("bg").get(), (*session)->model().get());
  const service::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.streaming.upgrades_completed, 1u);
  EXPECT_EQ(stats.streaming.deferred_upgrades, 1u);

  // A select now runs against the upgraded model, bit-identical to serial.
  SelectRequest request;
  request.table_id = "bg";
  SpQuery query;
  query.filters = {Predicate::Num("a", CmpOp::kLt, 30.0)};
  request.query = query;
  SelectResponse response = engine.Select(request);
  ASSERT_TRUE(response.status.ok());
  Result<SubTabView> serial = (*session)->model()->SelectForQuery(query);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(response.view->row_ids, serial->row_ids);
  EXPECT_EQ(response.view->col_ids, serial->col_ids);
}

// The background-refresh TSan case: appends with deferred upgrades racing
// selects on the same stream through the engine. Every select must get a
// servable published model (never blocking on training), version/refresh
// ordering must never roll the binding back, and the final state must
// converge to the newest publication once upgrades drain.
TEST(EngineStreamTest, ConcurrentAppendWithBackgroundRefreshAndSelect) {
  service::EngineOptions engine_options;
  engine_options.num_threads = 4;
  ServingEngine engine(engine_options);
  auto session = StreamSession::Open(LittleTable(60),
                                     BackgroundOptions(LittleConfig()));
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("live", *session).ok());

  constexpr size_t kBatches = 8;
  std::atomic<bool> done{false};
  std::atomic<size_t> selects_ok{0};
  std::vector<std::thread> selectors;
  for (int t = 0; t < 3; ++t) {
    selectors.emplace_back([&engine, &done, &selects_ok, t] {
      uint64_t seed = 5000 + t;
      do {
        SelectRequest request;
        request.table_id = "live";
        request.seed = ++seed;  // Distinct seeds dodge the selection cache.
        SelectResponse response = engine.Select(request);
        ASSERT_TRUE(response.status.ok());
        ASSERT_EQ(response.view->table.num_rows(),
                  response.view->row_ids.size());
        selects_ok.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_relaxed));
    });
  }
  for (size_t b = 0; b < kBatches; ++b) {
    Result<RefreshEvent> event =
        engine.Append("live", LittleTable(10, 60 + b * 10));
    ASSERT_TRUE(event.ok());
    // Appends never train inline here: publication is always the fold-in.
    ASSERT_EQ(event->action, RefreshAction::kFoldIn);
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& t : selectors) t.join();
  (*session)->WaitForUpgrades();

  EXPECT_GT(selects_ok.load(), 0u);
  // Converged: the binding serves the newest publication (version kBatches,
  // whatever refresh generation its upgrade reached), with every row.
  EXPECT_EQ(engine.GetModel("live").get(), (*session)->model().get());
  EXPECT_EQ(engine.GetModel("live")->table().num_rows(), 60 + kBatches * 10);
  EXPECT_EQ((*session)->model_key().version, kBatches);
  const service::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.streaming.appends, kBatches);
  // Upgrades either completed or were discarded for newer versions; the
  // handshake never loses one.
  EXPECT_GT(stats.streaming.deferred_upgrades, 0u);
  EXPECT_GT(stats.streaming.upgrades_completed +
                stats.streaming.upgrades_discarded,
            0u);
}

}  // namespace
}  // namespace subtab
