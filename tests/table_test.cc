// Unit tests for the dataframe substrate: Column, Schema, Table.

#include <gtest/gtest.h>

#include <cmath>

#include "subtab/table/table.h"

namespace subtab {
namespace {

Table SmallTable() {
  Column num = Column::Numeric("x", {1.0, 2.0, std::nan(""), 4.0});
  Column cat = Column::Categorical("c", {"a", "b", "a", ""});
  Result<Table> t = Table::Make({std::move(num), std::move(cat)});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

// ---------------------------------------------------------------- Column --

TEST(ColumnTest, NumericBasics) {
  Column col = Column::Numeric("x", {1.5, 2.5});
  EXPECT_EQ(col.name(), "x");
  EXPECT_EQ(col.type(), ColumnType::kNumeric);
  EXPECT_TRUE(col.is_numeric());
  EXPECT_EQ(col.size(), 2u);
  EXPECT_DOUBLE_EQ(col.num_value(0), 1.5);
  EXPECT_EQ(col.null_count(), 0u);
}

TEST(ColumnTest, NanBecomesNull) {
  Column col = Column::Numeric("x", {1.0, std::nan("")});
  EXPECT_TRUE(col.is_null(1));
  EXPECT_FALSE(col.is_null(0));
  EXPECT_EQ(col.null_count(), 1u);
  EXPECT_TRUE(std::isnan(col.num_value(1)));
}

TEST(ColumnTest, CategoricalDictionaryEncoding) {
  Column col = Column::Categorical("c", {"x", "y", "x", "z", "y"});
  EXPECT_EQ(col.dictionary().size(), 3u);
  EXPECT_EQ(col.cat_code(0), col.cat_code(2));
  EXPECT_NE(col.cat_code(0), col.cat_code(1));
  EXPECT_EQ(col.cat_value(3), "z");
  EXPECT_EQ(col.distinct_count(), 3u);
}

TEST(ColumnTest, EmptyStringIsNullInFactory) {
  Column col = Column::Categorical("c", {"a", "", "b"});
  EXPECT_TRUE(col.is_null(1));
  EXPECT_EQ(col.null_count(), 1u);
}

TEST(ColumnTest, AppendNullBothTypes) {
  Column num("n", ColumnType::kNumeric);
  num.AppendNull();
  num.AppendNumeric(7);
  EXPECT_TRUE(num.is_null(0));
  EXPECT_DOUBLE_EQ(num.num_value(1), 7.0);

  Column cat("c", ColumnType::kCategorical);
  cat.AppendCategorical("v");
  cat.AppendNull();
  EXPECT_TRUE(cat.is_null(1));
  EXPECT_EQ(cat.cat_value(0), "v");
}

TEST(ColumnTest, ToDisplay) {
  Column num = Column::Numeric("n", {2.5, std::nan("")});
  EXPECT_EQ(num.ToDisplay(0), "2.5");
  EXPECT_EQ(num.ToDisplay(1), "NaN");
  Column cat = Column::Categorical("c", {"hello"});
  EXPECT_EQ(cat.ToDisplay(0), "hello");
}

TEST(ColumnTest, TakeReordersAndDuplicates) {
  Column col = Column::Numeric("x", {10, 20, 30});
  Column taken = col.Take({2, 0, 2});
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_DOUBLE_EQ(taken.num_value(0), 30.0);
  EXPECT_DOUBLE_EQ(taken.num_value(1), 10.0);
  EXPECT_DOUBLE_EQ(taken.num_value(2), 30.0);
}

TEST(ColumnTest, TakePreservesNulls) {
  Column col = Column::Categorical("c", {"a", "", "b"});
  Column taken = col.Take({1, 2});
  EXPECT_TRUE(taken.is_null(0));
  EXPECT_EQ(taken.cat_value(1), "b");
}

TEST(ColumnTest, NumericRangeSkipsNulls) {
  Column col = Column::Numeric("x", {std::nan(""), 5.0, -2.0, 9.0});
  double mn = 0;
  double mx = 0;
  ASSERT_TRUE(col.NumericRange(&mn, &mx));
  EXPECT_DOUBLE_EQ(mn, -2.0);
  EXPECT_DOUBLE_EQ(mx, 9.0);
}

TEST(ColumnTest, NumericRangeAllNull) {
  Column col = Column::Numeric("x", {std::nan("")});
  double mn = 0;
  double mx = 0;
  EXPECT_FALSE(col.NumericRange(&mn, &mx));
}

TEST(ColumnTest, DistinctCountNumeric) {
  Column col = Column::Numeric("x", {1, 1, 2, std::nan("")});
  EXPECT_EQ(col.distinct_count(), 2u);
}

// ---------------------------------------------------------------- Schema --

TEST(SchemaTest, IndexOf) {
  Schema s({{"a", ColumnType::kNumeric}, {"b", ColumnType::kCategorical}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.IndexOf("b"), std::optional<size_t>(1));
  EXPECT_FALSE(s.IndexOf("zzz").has_value());
}

TEST(SchemaTest, SelectSubset) {
  Schema s({{"a", ColumnType::kNumeric},
            {"b", ColumnType::kCategorical},
            {"c", ColumnType::kNumeric}});
  Schema sub = s.Select({2, 0});
  EXPECT_EQ(sub.num_fields(), 2u);
  EXPECT_EQ(sub.field(0).name, "c");
  EXPECT_EQ(sub.field(1).name, "a");
}

TEST(SchemaTest, ToStringMentionsTypes) {
  Schema s({{"a", ColumnType::kNumeric}});
  EXPECT_EQ(s.ToString(), "a:numeric");
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", ColumnType::kNumeric}});
  Schema b({{"x", ColumnType::kNumeric}});
  Schema c({{"x", ColumnType::kCategorical}});
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

// ----------------------------------------------------------------- Table --

TEST(TableTest, MakeChecksLengths) {
  Column a = Column::Numeric("a", {1, 2});
  Column b = Column::Numeric("b", {1, 2, 3});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  EXPECT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, MakeRejectsDuplicateNames) {
  Column a = Column::Numeric("a", {1});
  Column b = Column::Numeric("a", {2});
  Result<Table> t = Table::Make({std::move(a), std::move(b)});
  EXPECT_FALSE(t.ok());
}

TEST(TableTest, BasicAccessors) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 4u);
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.column("x").name(), "x");
  EXPECT_EQ(t.column(1).name(), "c");
  EXPECT_TRUE(t.ColumnIndex("c").ok());
  EXPECT_EQ(*t.ColumnIndex("c"), 1u);
  EXPECT_FALSE(t.ColumnIndex("nope").ok());
}

TEST(TableTest, TakeRows) {
  Table t = SmallTable();
  Table sub = t.TakeRows({3, 0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.num_columns(), 2u);
  EXPECT_DOUBLE_EQ(sub.column("x").num_value(1), 1.0);
  EXPECT_TRUE(sub.column("c").is_null(0));
}

TEST(TableTest, SelectColumns) {
  Table t = SmallTable();
  Table sub = t.SelectColumns({1});
  EXPECT_EQ(sub.num_columns(), 1u);
  EXPECT_EQ(sub.column(0).name(), "c");
  EXPECT_EQ(sub.num_rows(), 4u);
}

TEST(TableTest, SubTableMatchesDefinition) {
  // Def. 3.1: rows of T projected over a column subset.
  Table t = SmallTable();
  Table sub = t.SubTable({1, 2}, {0});
  EXPECT_EQ(sub.num_rows(), 2u);
  EXPECT_EQ(sub.num_columns(), 1u);
  EXPECT_DOUBLE_EQ(sub.column(0).num_value(0), 2.0);
  EXPECT_TRUE(sub.column(0).is_null(1));
}

TEST(TableTest, HeadClampsToRows) {
  Table t = SmallTable();
  EXPECT_EQ(t.Head(2).num_rows(), 2u);
  EXPECT_EQ(t.Head(99).num_rows(), 4u);
}

TEST(TableTest, TotalNullCount) {
  Table t = SmallTable();
  EXPECT_EQ(t.TotalNullCount(), 2u);
}

TEST(TableTest, ToStringContainsHeaderAndValues) {
  Table t = SmallTable();
  const std::string s = t.ToString(2);
  EXPECT_NE(s.find("x"), std::string::npos);
  EXPECT_NE(s.find("c"), std::string::npos);
  EXPECT_NE(s.find("1"), std::string::npos);
  EXPECT_NE(s.find("2 of 4 rows"), std::string::npos);
}

TEST(TableTest, AddColumnToEmptyTableSetsRowCount) {
  Table t;
  EXPECT_TRUE(t.AddColumn(Column::Numeric("a", {1, 2, 3})).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_FALSE(t.AddColumn(Column::Numeric("b", {1})).ok());
}


TEST(TableTest, DescribeSummarizesColumns) {
  Table t = SmallTable();
  Table d = t.Describe();
  ASSERT_EQ(d.num_rows(), 2u);   // One row per source column.
  ASSERT_EQ(d.num_columns(), 8u);
  // Numeric column "x": values {1, 2, NaN, 4}.
  EXPECT_EQ(d.column("column").cat_value(0), "x");
  EXPECT_EQ(d.column("type").cat_value(0), "numeric");
  EXPECT_DOUBLE_EQ(d.column("count").num_value(0), 3.0);
  EXPECT_DOUBLE_EQ(d.column("nulls").num_value(0), 1.0);
  EXPECT_DOUBLE_EQ(d.column("min").num_value(0), 1.0);
  EXPECT_DOUBLE_EQ(d.column("max").num_value(0), 4.0);
  EXPECT_NEAR(d.column("mean").num_value(0), 7.0 / 3.0, 1e-12);
  // Categorical column "c": min/max/mean are null.
  EXPECT_EQ(d.column("type").cat_value(1), "categorical");
  EXPECT_TRUE(d.column("min").is_null(1));
  EXPECT_DOUBLE_EQ(d.column("distinct").num_value(1), 2.0);
}

TEST(TableTest, DescribeAllNullNumericColumn) {
  Column a = Column::Numeric("a", {std::nan(""), std::nan("")});
  Result<Table> t = Table::Make({std::move(a)});
  ASSERT_TRUE(t.ok());
  Table d = t->Describe();
  EXPECT_DOUBLE_EQ(d.column("count").num_value(0), 0.0);
  EXPECT_TRUE(d.column("min").is_null(0));
  EXPECT_TRUE(d.column("mean").is_null(0));
}

}  // namespace
}  // namespace subtab
