// Tests for the observability layer (util/trace.h, util/metrics.h and their
// engine/stream integration): span parent/child integrity across the staged
// pipeline's queue hops, ring eviction that keeps slow-query exemplars
// pinned, MetricsRegistry delta snapshots, trace-tagged logging scopes, and
// a TSan-targeted concurrent session (drill-down chains + stream appends
// racing the sink's readers).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <thread>
#include <unordered_set>
#include <vector>

#include "subtab/service/engine.h"
#include "subtab/stream/stream_session.h"
#include "subtab/util/logging.h"
#include "subtab/util/metrics.h"
#include "subtab/util/trace.h"

namespace subtab {
namespace {

using service::EngineOptions;
using service::SelectRequest;
using service::SelectResponse;
using service::ServingEngine;
using stream::StreamSession;
using stream::StreamSessionOptions;

/// Deterministic table with enough rows for drill-down chains (same shape
/// as the containment suite's fixture).
Table DrillTable(size_t n = 120, size_t offset = 0) {
  std::vector<double> a, b;
  std::vector<std::string> c;
  for (size_t i = offset; i < offset + n; ++i) {
    a.push_back(static_cast<double>(i % 60));
    b.push_back(static_cast<double>(i % 7) * 2.5);
    c.push_back(i % 3 == 0 ? "x" : i % 3 == 1 ? "y" : "z");
  }
  Result<Table> table = Table::Make({Column::Numeric("a", a),
                                     Column::Numeric("b", b),
                                     Column::Categorical("c", c)});
  SUBTAB_CHECK(table.ok());
  return std::move(*table);
}

SubTabConfig TinyConfig(uint64_t seed = 7) {
  SubTabConfig config;
  config.k = 4;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = seed;
  return config;
}

SpQuery Where(std::vector<Predicate> filters) {
  SpQuery q;
  q.filters = std::move(filters);
  return q;
}

/// A fabricated completed trace with a controlled root duration — the sink
/// does not care who produced a trace, only how slow it was.
std::shared_ptr<const CompletedTrace> FakeTrace(uint64_t id,
                                                uint64_t duration_ns) {
  auto trace = std::make_shared<CompletedTrace>();
  trace->trace_id = id;
  trace->name = "fake";
  trace->duration_ns = duration_ns;
  TraceSpan root;
  root.trace_id = id;
  root.span_id = 1;
  root.name = "fake";
  root.duration_ns = duration_ns;
  trace->spans.push_back(std::move(root));
  return trace;
}

// ----------------------------------------------------------- TraceContext --

TEST(TraceContextTest, DisabledContextIsFreeNoOp) {
  TraceContext context;
  EXPECT_FALSE(context.enabled());
  EXPECT_EQ(context.trace_id(), 0u);

  TraceSpan span = context.StartSpan("scan");
  EXPECT_FALSE(span.enabled());
  span.AddAttr("rows", uint64_t{7});  // No-op, no crash.
  EXPECT_EQ(span.FindAttr("rows"), nullptr);
  context.FinishSpan(std::move(span));
  context.AddRootAttr("table", "t");
  EXPECT_EQ(context.FinishRoot(), nullptr);
}

TEST(TraceContextTest, RootAndChildStructure) {
  auto sink = std::make_shared<TraceSink>();
  TraceContext context = TraceContext::Start("select", sink);
  ASSERT_TRUE(context.enabled());
  EXPECT_NE(context.trace_id(), 0u);
  context.AddRootAttr("table", "t");

  TraceSpan first = context.StartSpan("queue.scan");
  EXPECT_TRUE(first.enabled());
  EXPECT_EQ(first.trace_id, context.trace_id());
  context.FinishSpan(std::move(first));
  TraceSpan second = context.StartSpan("scan");
  second.AddAttr("rows_visited", uint64_t{60});
  context.FinishSpan(std::move(second));

  std::shared_ptr<const CompletedTrace> done = context.FinishRoot();
  ASSERT_NE(done, nullptr);
  ASSERT_EQ(done->spans.size(), 3u);
  const TraceSpan& root = done->root();
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.name, "select");
  EXPECT_NE(root.span_id, 0u);
  EXPECT_EQ(done->duration_ns, root.duration_ns);
  ASSERT_NE(root.FindAttr("table"), nullptr);
  EXPECT_EQ(*root.FindAttr("table"), "t");

  std::vector<uint64_t> ids{root.span_id};
  for (size_t i = 1; i < done->spans.size(); ++i) {
    const TraceSpan& child = done->spans[i];
    EXPECT_EQ(child.trace_id, done->trace_id);
    EXPECT_EQ(child.parent_id, root.span_id);
    EXPECT_NE(child.span_id, 0u);
    EXPECT_GE(child.start_ns, root.start_ns);
    ids.push_back(child.span_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());
  ASSERT_NE(done->spans[2].FindAttr("rows_visited"), nullptr);
  EXPECT_EQ(*done->spans[2].FindAttr("rows_visited"), "60");

  // Committed exactly once; FinishRoot is idempotent.
  EXPECT_EQ(sink->Stats().committed, 1u);
  EXPECT_EQ(context.FinishRoot().get(), done.get());
  EXPECT_EQ(sink->Stats().committed, 1u);

  // Spans finished after the root are dropped, not resurrected.
  TraceSpan late = context.StartSpan("late");
  context.FinishSpan(std::move(late));
  EXPECT_EQ(done->spans.size(), 3u);
}

TEST(TraceContextTest, SpanHandedAcrossThreadsByValue) {
  // The pipeline's contract: a span opened by the submitting thread is
  // finished by whichever worker picks the stage up — the span travels by
  // value, no thread-local anywhere.
  auto sink = std::make_shared<TraceSink>();
  TraceContext context = TraceContext::Start("select", sink);
  TraceSpan hop = context.StartSpan("queue.scan");
  std::thread worker([&context, span = std::move(hop)]() mutable {
    context.FinishSpan(std::move(span));
    context.FinishSpan(context.StartSpan("scan"));
  });
  worker.join();
  std::shared_ptr<const CompletedTrace> done = context.FinishRoot();
  ASSERT_NE(done, nullptr);
  ASSERT_EQ(done->spans.size(), 3u);
  EXPECT_EQ(done->spans[1].name, "queue.scan");
  EXPECT_EQ(done->spans[1].parent_id, done->root().span_id);
}

// -------------------------------------------------------------- TraceSink --

TEST(TraceSinkTest, RingEvictsOldestButPinsSlowExemplars) {
  TraceSinkOptions options;
  options.ring_capacity = 8;
  options.shards = 1;
  options.exemplar_capacity = 4;
  options.exemplar_percentile = 0.9;
  options.exemplar_min_samples = 16;
  TraceSink sink(options);

  // Arm the threshold with fast traces, then commit two slow spikes, then
  // churn the ring far past its capacity with more fast traffic.
  uint64_t id = 1;
  for (int i = 0; i < 16; ++i) sink.Commit(FakeTrace(id++, 1'000'000));
  sink.Commit(FakeTrace(900, 3'000'000'000));
  sink.Commit(FakeTrace(901, 2'000'000'000));
  for (int i = 0; i < 64; ++i) sink.Commit(FakeTrace(id++, 1'000'000));

  // The slow traces are long gone from the ring...
  bool slow_in_ring = false;
  for (const auto& trace : sink.Recent()) {
    if (trace->trace_id == 900 || trace->trace_id == 901) slow_in_ring = true;
  }
  EXPECT_FALSE(slow_in_ring);
  // ...but pinned as exemplars, slowest first.
  std::vector<std::shared_ptr<const CompletedTrace>> exemplars =
      sink.Exemplars();
  ASSERT_GE(exemplars.size(), 2u);
  EXPECT_EQ(exemplars[0]->trace_id, 900u);
  EXPECT_EQ(exemplars[1]->trace_id, 901u);

  const TraceSinkStats stats = sink.Stats();
  EXPECT_EQ(stats.committed, 82u);
  EXPECT_GT(stats.ring_evicted, 0u);
  EXPECT_GE(stats.exemplars_pinned, 2u);
  EXPECT_GT(stats.exemplar_threshold_seconds, 0.0);
}

TEST(TraceSinkTest, ExemplarReplacementConvergesOnSlowest) {
  TraceSinkOptions options;
  options.ring_capacity = 4;
  options.shards = 1;
  options.exemplar_capacity = 2;
  options.exemplar_percentile = 0.5;
  options.exemplar_min_samples = 4;
  TraceSink sink(options);

  for (int i = 0; i < 8; ++i) sink.Commit(FakeTrace(100 + i, 1'000'000));
  // Ascending slow spikes: each one displaces the fastest pinned exemplar.
  for (uint64_t s = 1; s <= 5; ++s) {
    sink.Commit(FakeTrace(200 + s, s * 1'000'000'000));
  }
  std::vector<std::shared_ptr<const CompletedTrace>> exemplars =
      sink.Exemplars();
  ASSERT_EQ(exemplars.size(), 2u);
  EXPECT_EQ(exemplars[0]->trace_id, 205u);  // 5s
  EXPECT_EQ(exemplars[1]->trace_id, 204u);  // 4s
  EXPECT_GT(sink.Stats().exemplars_evicted, 0u);
}

TEST(TraceSinkTest, PeekIsNonDestructiveAndDrainConsumesRingOnce) {
  TraceSinkOptions options;
  options.ring_capacity = 8;
  options.shards = 2;
  options.exemplar_capacity = 2;
  options.exemplar_percentile = 0.5;
  options.exemplar_min_samples = 4;
  TraceSink sink(options);

  for (uint64_t i = 1; i <= 6; ++i) sink.Commit(FakeTrace(i, 1'000'000));
  // A slow spike pinned as an exemplar, then churn it out of the ring.
  sink.Commit(FakeTrace(500, 5'000'000'000));
  for (uint64_t i = 7; i <= 20; ++i) sink.Commit(FakeTrace(i, 1'000'000));

  // Peek merges ring + evicted exemplars, deduplicated, and is capped.
  std::vector<std::shared_ptr<const CompletedTrace>> peeked = sink.Peek();
  const size_t ring_size = sink.Recent().size();
  EXPECT_GE(peeked.size(), ring_size);  // Exemplar 500 rides along.
  bool saw_exemplar = false;
  std::unordered_set<uint64_t> ids;
  for (const auto& trace : peeked) {
    EXPECT_TRUE(ids.insert(trace->trace_id).second);  // Exactly once.
    if (trace->trace_id == 500) saw_exemplar = true;
  }
  EXPECT_TRUE(saw_exemplar);
  EXPECT_EQ(sink.Peek(3).size(), 3u);

  // Peeking consumed nothing: a drain after the peek still returns the
  // whole ring, exactly once.
  std::vector<std::shared_ptr<const CompletedTrace>> drained = sink.Drain();
  EXPECT_EQ(drained.size(), ring_size);
  EXPECT_TRUE(sink.Recent().empty());
  EXPECT_TRUE(sink.Drain().empty());  // Second drain: already consumed.

  // Exemplars are retention, not a queue: the pin survives the drain and
  // still shows up in observer views.
  ASSERT_FALSE(sink.Exemplars().empty());
  EXPECT_EQ(sink.Exemplars()[0]->trace_id, 500u);
  std::vector<std::shared_ptr<const CompletedTrace>> after = sink.Peek();
  ASSERT_FALSE(after.empty());
  EXPECT_EQ(after[0]->trace_id, 500u);

  // Draining is not an eviction; the sink's stats stay truthful.
  EXPECT_EQ(sink.Stats().committed, 21u);
}

TEST(TraceSinkTest, JsonlExportOneLinePerTrace) {
  auto sink = std::make_shared<TraceSink>();
  TraceContext context = TraceContext::Start("select", sink);
  context.AddRootAttr("query", "a >= \"x\"\n");  // Needs escaping.
  context.FinishSpan(context.StartSpan("scan"));
  context.FinishRoot();

  const std::string jsonl = TracesToJsonl(sink->Recent());
  EXPECT_NE(jsonl.find("\"name\":\"select\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"spans\":["), std::string::npos);
  EXPECT_NE(jsonl.find("\\\"x\\\""), std::string::npos);
  EXPECT_NE(jsonl.find("\\n"), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
}

// -------------------------------------------------------- MetricsRegistry --

TEST(MetricsTest, RegistryInstrumentsAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("engine.requests.submitted");
  EXPECT_EQ(registry.counter("engine.requests.submitted"), counter);
  counter->Add();
  counter->Add(4);
  EXPECT_EQ(counter->Value(), 5u);

  Gauge* gauge = registry.gauge("engine.queue_depth");
  gauge->Set(3.5);
  EXPECT_DOUBLE_EQ(gauge->Value(), 3.5);

  LatencyHistogram* histogram = registry.histogram("pipeline.latency");
  histogram->Record(0.010);
  histogram->Record(0.020);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("engine.requests.submitted"), 5u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("engine.queue_depth"), 3.5);
  EXPECT_EQ(snapshot.histograms.at("pipeline.latency").count, 2u);

  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"engine.requests.submitted\":5"), std::string::npos);
  EXPECT_NE(json.find("\"engine.queue_depth\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p95_ms\""), std::string::npos);
}

TEST(MetricsTest, DeltaSnapshotsSubtractCountersAndHistograms) {
  MetricsRegistry registry;
  Counter* counter = registry.counter("scan.rows_visited");
  LatencyHistogram* histogram = registry.histogram("pipeline.stage.scan");
  Gauge* gauge = registry.gauge("engine.tables");

  counter->Add(10);
  histogram->Record(0.001);
  gauge->Set(1.0);
  const MetricsSnapshot before = registry.Snapshot();

  counter->Add(32);
  histogram->Record(0.002);
  histogram->Record(0.004);
  gauge->Set(2.0);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = after.Delta(before);
  EXPECT_EQ(delta.counters.at("scan.rows_visited"), 32u);
  EXPECT_EQ(delta.histograms.at("pipeline.stage.scan").count, 2u);
  EXPECT_NEAR(delta.histograms.at("pipeline.stage.scan").sum_seconds, 0.006,
              1e-9);
  // Gauges are point-in-time: the delta carries the later value.
  EXPECT_DOUBLE_EQ(delta.gauges.at("engine.tables"), 2.0);

  // An instrument registered after `before` still deltas cleanly.
  registry.counter("engine.requests.failed")->Add(2);
  const MetricsSnapshot delta2 = registry.Snapshot().Delta(before);
  EXPECT_EQ(delta2.counters.at("engine.requests.failed"), 2u);
}

// ------------------------------------------------------------ Log tagging --

TEST(LogTraceScopeTest, NestsAndRestores) {
  EXPECT_EQ(CurrentLogTraceId(), 0u);
  {
    LogTraceScope outer(42);
    EXPECT_EQ(CurrentLogTraceId(), 42u);
    {
      LogTraceScope inner(77);
      EXPECT_EQ(CurrentLogTraceId(), 77u);
      {
        LogTraceScope zero(0);  // Disabled trace: keeps the current tag.
        EXPECT_EQ(CurrentLogTraceId(), 77u);
      }
    }
    EXPECT_EQ(CurrentLogTraceId(), 42u);
  }
  EXPECT_EQ(CurrentLogTraceId(), 0u);
}

// ----------------------------------------------------- Engine integration --

TEST(EngineTraceTest, DrillDownTraceSpansStagesAcrossHops) {
  EngineOptions options;
  options.num_threads = 2;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), TinyConfig()).ok());

  // Parent resolves first so the refinement's scan goes through containment.
  SelectRequest parent;
  parent.table_id = "t";
  parent.query = Where({Predicate::Num("a", CmpOp::kGe, 10.0)});
  ASSERT_TRUE(engine.Select(parent).status.ok());

  SelectRequest refined;
  refined.table_id = "t";
  refined.query = Where({Predicate::Num("a", CmpOp::kGe, 10.0),
                         Predicate::Str("c", CmpOp::kEq, "x")});
  refined.trace_explain = true;
  SelectResponse response = engine.Select(refined);
  ASSERT_TRUE(response.status.ok());
  EXPECT_NE(response.trace_id, 0u);
  ASSERT_NE(response.trace, nullptr);

  const CompletedTrace& trace = *response.trace;
  EXPECT_EQ(trace.trace_id, response.trace_id);
  ASSERT_EQ(trace.spans.size(), 5u);
  const TraceSpan& root = trace.root();
  EXPECT_EQ(root.name, "select");
  ASSERT_NE(root.FindAttr("table"), nullptr);
  ASSERT_NE(root.FindAttr("admission"), nullptr);
  EXPECT_EQ(*root.FindAttr("admission"), "admitted");
  ASSERT_NE(root.FindAttr("status"), nullptr);
  EXPECT_EQ(*root.FindAttr("status"), "ok");

  // The four stage spans, in finish order, all children of the root.
  const char* expected[] = {"queue.scan", "scan", "queue.select", "select"};
  uint64_t staged_ns = 0;
  for (size_t i = 1; i < trace.spans.size(); ++i) {
    const TraceSpan& span = trace.spans[i];
    EXPECT_EQ(span.name, expected[i - 1]);
    EXPECT_EQ(span.parent_id, root.span_id);
    EXPECT_GE(span.start_ns, root.start_ns);
    staged_ns += span.duration_ns;
  }
  EXPECT_LE(staged_ns, root.duration_ns);

  // The scan span explains its cost: containment verdict + rows + chunks.
  const TraceSpan& scan = trace.spans[2];
  ASSERT_NE(scan.FindAttr("containment"), nullptr);
  EXPECT_EQ(*scan.FindAttr("containment"), "hit");
  ASSERT_NE(scan.FindAttr("ancestor_rows"), nullptr);
  ASSERT_NE(scan.FindAttr("rows_visited"), nullptr);
  ASSERT_NE(scan.FindAttr("restricted"), nullptr);
  EXPECT_EQ(*scan.FindAttr("restricted"), "true");
  const TraceSpan& select = trace.spans[4];
  ASSERT_NE(select.FindAttr("scope_rows"), nullptr);

  // The sink retained it (no explain needed to be retained).
  bool retained = false;
  for (const auto& kept : engine.trace_sink()->Recent()) {
    if (kept->trace_id == response.trace_id) retained = true;
  }
  EXPECT_TRUE(retained);
}

TEST(EngineTraceTest, CacheHitTraceIsRootOnlyWithTier) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), TinyConfig()).ok());
  SelectRequest request;
  request.table_id = "t";
  request.query = Where({Predicate::Num("a", CmpOp::kGe, 30.0)});
  ASSERT_TRUE(engine.Select(request).status.ok());

  request.trace_explain = true;
  SelectResponse hit = engine.Select(request);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.from_cache);
  EXPECT_NE(hit.trace_id, 0u);
  ASSERT_NE(hit.trace, nullptr);
  EXPECT_EQ(hit.trace->spans.size(), 1u);  // Root only: no stages ran.
  ASSERT_NE(hit.trace->root().FindAttr("cache"), nullptr);
  EXPECT_EQ(*hit.trace->root().FindAttr("cache"), "exact");
}

TEST(EngineTraceTest, ShedResponseCarriesTraceIdAndStage) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_pending_per_tenant = 1;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), TinyConfig()).ok());

  // Hold the worker so the first admitted request stays pending, then
  // overflow the tenant bound with a distinct request.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });

  SelectRequest first;
  first.table_id = "t";
  first.query = Where({Predicate::Num("a", CmpOp::kGe, 5.0)});
  std::shared_future<SelectResponse> admitted = engine.SubmitSelect(first);

  SelectRequest second = first;
  second.query = Where({Predicate::Num("a", CmpOp::kGe, 6.0)});
  second.trace_explain = true;
  SelectResponse shed = engine.SubmitSelect(second).get();
  gate.set_value();
  engine.Drain();

  ASSERT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.trace_id, 0u);
  // The message names the stage and the trace id, greppable from a client
  // log straight into the sink's retained traces.
  EXPECT_NE(shed.status.message().find("[stage=admission"), std::string::npos);
  EXPECT_NE(shed.status.message().find("trace="), std::string::npos);
  ASSERT_NE(shed.trace, nullptr);
  ASSERT_NE(shed.trace->root().FindAttr("admission"), nullptr);
  EXPECT_EQ(*shed.trace->root().FindAttr("admission"), "shed_tenant");
  EXPECT_TRUE(admitted.get().status.ok());
  EXPECT_EQ(engine.Stats().pipeline.shed_tenant, 1u);
  EXPECT_EQ(engine.Stats().pipeline.requests_shed, 1u);
}

TEST(EngineTraceTest, TracingDisabledLeavesNoTraceAndNoSink) {
  EngineOptions options;
  options.tracing = false;
  ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), TinyConfig()).ok());
  EXPECT_EQ(engine.trace_sink(), nullptr);

  SelectRequest request;
  request.table_id = "t";
  request.query = Where({Predicate::Num("a", CmpOp::kGe, 20.0)});
  request.trace_explain = true;  // Opt-in is moot with tracing off.
  SelectResponse response = engine.Select(request);
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(response.trace_id, 0u);
  EXPECT_EQ(response.trace, nullptr);
  // The stage histograms still record — metrics do not depend on tracing.
  EXPECT_EQ(engine.Stats().pipeline.stage_scan.count, 1u);
  EXPECT_NE(engine.MetricsJson().find("\"pipeline.stage.scan\""),
            std::string::npos);
}

TEST(EngineTraceTest, StatsJsonCarriesStagesAndTraceSections) {
  ServingEngine engine;
  ASSERT_TRUE(engine.RegisterTable("t", DrillTable(), TinyConfig()).ok());
  SelectRequest request;
  request.table_id = "t";
  request.query = Where({Predicate::Num("a", CmpOp::kGe, 15.0)});
  ASSERT_TRUE(engine.Select(request).status.ok());

  const std::string json = engine.Stats().ToJson();
  for (const char* key :
       {"\"stages\":", "\"queue_scan\":", "\"queue_select\":",
        "\"shed_global_queue\":", "\"shed_tenant\":", "\"trace\":",
        "\"exemplars_pinned\":", "\"worker_utilization\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_EQ(engine.Stats().trace.committed, 1u);
}

// ------------------------------------------------------- Stream refreshes --

TEST(StreamTraceTest, AppendEmitsRefreshTrace) {
  StreamSessionOptions options;
  options.config = TinyConfig();
  Result<std::shared_ptr<StreamSession>> session =
      StreamSession::Open(DrillTable(), options);
  ASSERT_TRUE(session.ok());
  auto sink = std::make_shared<TraceSink>();
  (*session)->SetTraceSink(sink);

  ASSERT_TRUE((*session)->Append(DrillTable(30, 500)).ok());

  std::vector<std::shared_ptr<const CompletedTrace>> recent = sink->Recent();
  ASSERT_EQ(recent.size(), 1u);
  const CompletedTrace& trace = *recent[0];
  EXPECT_EQ(trace.name, "stream.append");
  ASSERT_EQ(trace.spans.size(), 2u);
  EXPECT_EQ(trace.spans[1].name, "refresh");
  EXPECT_EQ(trace.spans[1].parent_id, trace.root().span_id);
  ASSERT_NE(trace.spans[1].FindAttr("action"), nullptr);
  ASSERT_NE(trace.root().FindAttr("version"), nullptr);
  EXPECT_EQ(*trace.root().FindAttr("version"), "1");
  ASSERT_NE(trace.root().FindAttr("delta_rows"), nullptr);
  EXPECT_EQ(*trace.root().FindAttr("delta_rows"), "30");
  ASSERT_NE(trace.root().FindAttr("status"), nullptr);
  EXPECT_EQ(*trace.root().FindAttr("status"), "ok");
}

TEST(StreamTraceTest, EngineInstallsItsSinkOnRegisteredStreams) {
  ServingEngine engine;
  StreamSessionOptions options;
  options.config = TinyConfig();
  Result<std::shared_ptr<StreamSession>> session =
      StreamSession::Open(DrillTable(), options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("s", *session).ok());

  ASSERT_TRUE(engine.Append("s", DrillTable(30, 500)).ok());
  bool saw_append_trace = false;
  for (const auto& trace : engine.trace_sink()->Recent()) {
    if (trace->name == "stream.append") saw_append_trace = true;
  }
  EXPECT_TRUE(saw_append_trace);
}

// ------------------------------------------------------------ Concurrency --
// TSan target (run in the CI sanitizer matrix): drill-down chains and
// stream appends race the sink's readers and the metrics endpoints.

TEST(TraceConcurrencyTest, ChainsAppendsAndSinkDrainsRace) {
  EngineOptions options;
  options.num_threads = 4;
  options.trace_sink.ring_capacity = 32;  // Force eviction churn.
  options.trace_sink.exemplar_min_samples = 8;
  ServingEngine engine(options);
  StreamSessionOptions stream_options;
  stream_options.config = TinyConfig();
  Result<std::shared_ptr<StreamSession>> session =
      StreamSession::Open(DrillTable(), stream_options);
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(engine.RegisterStream("t", *session).ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> traced_ok{0};
  std::vector<std::thread> threads;

  // Drill-down clients: each replays refinement chains with explain on.
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&engine, &traced_ok, c] {
      for (int round = 0; round < 12; ++round) {
        const double base = 5.0 * ((c + round) % 8);
        SpQuery query = Where({Predicate::Num("a", CmpOp::kGe, base)});
        for (int step = 0; step < 3; ++step) {
          SelectRequest request;
          request.table_id = "t";
          request.query = query;
          request.seed = static_cast<uint64_t>(c * 1000 + round);
          request.trace_explain = (step == 2);
          SelectResponse response = engine.Select(request);
          if (response.status.ok() && response.trace_id != 0) ++traced_ok;
          query.filters.push_back(
              Predicate::Num("a", CmpOp::kGe, base + 5.0 * (step + 1)));
        }
      }
    });
  }
  // Appender: publishes new versions (and their stream.append traces).
  threads.emplace_back([&engine] {
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(engine.Append("t", DrillTable(20, 1000 + 20 * i)).ok());
    }
  });
  // Drainer: hammers every read endpoint while writers commit.
  threads.emplace_back([&engine, &stop] {
    size_t drained = 0;
    while (!stop.load(std::memory_order_acquire)) {
      drained += engine.trace_sink()->Recent().size();
      drained += engine.trace_sink()->Exemplars().size();
      (void)engine.trace_sink()->Stats();
      (void)engine.MetricsJson();
      (void)engine.Stats().ToJson();
      std::this_thread::yield();
    }
    EXPECT_GT(drained, 0u);
  });

  for (size_t i = 0; i + 2 < threads.size(); ++i) threads[i].join();
  threads[threads.size() - 2].join();
  stop.store(true, std::memory_order_release);
  threads.back().join();
  engine.Drain();

  EXPECT_GT(traced_ok.load(), 0u);
  const TraceSinkStats stats = engine.trace_sink()->Stats();
  EXPECT_GT(stats.committed, 0u);
  const service::EngineStats engine_stats = engine.Stats();
  EXPECT_EQ(engine_stats.requests_submitted, engine_stats.requests_completed);
}

}  // namespace
}  // namespace subtab
