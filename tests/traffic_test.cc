// The workload forge's traffic half (workload/traffic_driver.h): arrival
// statistics on a fake clock, Zipf tenant skew, session-walk coherence,
// schedule determinism — and the defining open-loop property: a stalled
// engine does not slow the driver down, sheds are counted and never retried.
// The TSan CI job additionally runs the concurrent drive-while-appends case.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "subtab/service/engine.h"
#include "subtab/stream/stream_session.h"
#include "subtab/workload/synthetic_table.h"
#include "subtab/workload/traffic_driver.h"

namespace subtab::workload {
namespace {

std::vector<std::vector<SpQuery>> OneStepSessions() {
  SpQuery q;
  q.filters = {Predicate::Num("a", CmpOp::kGe, 1.0)};
  return {{q}};
}

std::vector<std::vector<SpQuery>> ChainSessions(size_t count, size_t steps) {
  std::vector<std::vector<SpQuery>> sessions;
  for (size_t s = 0; s < count; ++s) {
    std::vector<SpQuery> chain;
    for (size_t i = 0; i < steps; ++i) {
      SpQuery q;
      q.filters = {Predicate::Num(
          "a", CmpOp::kGe, static_cast<double>(s * steps + i))};
      chain.push_back(q);
    }
    sessions.push_back(chain);
  }
  return sessions;
}

// -------------------------------------------------------------- arrivals --

TEST(TrafficDriverTest, PoissonArrivalsMatchConfiguredRate) {
  TrafficOptions options;
  options.rate_rps = 200.0;
  options.total_requests = 20000;
  options.num_tenants = 2;
  FakeClock clock;
  TrafficDriver driver(options, OneStepSessions(), &clock);

  std::vector<double> fires;
  fires.reserve(options.total_requests);
  const DriveReport report = driver.Drive(
      [&](const TrafficRequest& request) {
        fires.push_back(request.fired_seconds);
      });

  ASSERT_EQ(report.fired, options.total_requests);
  // On a fake clock every fire lands exactly on schedule.
  EXPECT_EQ(report.max_lag_seconds, 0.0);
  EXPECT_NEAR(report.offered_rate_rps, 200.0, 200.0 * 0.03);

  // Exponential inter-arrivals: mean 1/rate, coefficient of variation 1.
  double sum = 0.0, sum_sq = 0.0;
  for (size_t i = 1; i < fires.size(); ++i) {
    const double gap = fires[i] - fires[i - 1];
    ASSERT_GT(gap, 0.0);
    sum += gap;
    sum_sq += gap * gap;
  }
  const double n = static_cast<double>(fires.size() - 1);
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0 / 200.0, 1.0 / 200.0 * 0.03);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(TrafficDriverTest, BurstyArrivalsConcentrateInBurstPhase) {
  TrafficOptions options;
  options.rate_rps = 100.0;
  options.arrival = ArrivalProcess::kBursty;
  options.burst_factor = 2.0;        // Hi 200 rps for 0.5s of every 2s;
  options.burst_on_seconds = 0.5;    // lo = 100 * (2 - 1) / 1.5 = 66.7 rps.
  options.burst_cycle_seconds = 2.0;
  options.total_requests = 20000;
  FakeClock clock;
  TrafficDriver driver(options, OneStepSessions(), &clock);

  double on_fires = 0.0, off_fires = 0.0, last = 0.0;
  const DriveReport report = driver.Drive(
      [&](const TrafficRequest& request) {
        const double phase = std::fmod(request.fired_seconds, 2.0);
        (phase < 0.5 ? on_fires : off_fires) += 1.0;
        last = request.fired_seconds;
      });

  ASSERT_EQ(report.fired, options.total_requests);
  // Overall mean preserved.
  EXPECT_NEAR(report.offered_rate_rps, 100.0, 100.0 * 0.05);
  // Per-second rates: on-phase gets 0.5s of every 2s.
  const double cycles = last / 2.0;
  const double on_rate = on_fires / (cycles * 0.5);
  const double off_rate = off_fires / (cycles * 1.5);
  EXPECT_NEAR(on_rate, 200.0, 200.0 * 0.07);
  EXPECT_NEAR(off_rate, 100.0 * (2.0 - 1.0) / 1.5, 66.7 * 0.07);
}

// ---------------------------------------------------------------- tenants --

TEST(TrafficDriverTest, ZipfTenantSkewMatchesTheory) {
  TrafficOptions options;
  options.rate_rps = 1000.0;
  options.num_tenants = 8;
  options.tenant_zipf = 1.0;
  options.total_requests = 40000;
  FakeClock clock;
  TrafficDriver driver(options, OneStepSessions(), &clock);
  const DriveReport report = driver.Drive([](const TrafficRequest&) {});

  ASSERT_EQ(report.tenant_fires.size(), 8u);
  // P(i) proportional to 1/(i+1)^s (util/rng.h Zipf): strictly decreasing in
  // expectation; check each empirical frequency against theory.
  double norm = 0.0;
  for (size_t i = 0; i < 8; ++i) norm += 1.0 / static_cast<double>(i + 1);
  for (size_t i = 0; i < 8; ++i) {
    const double expected = (1.0 / static_cast<double>(i + 1)) / norm;
    const double observed = static_cast<double>(report.tenant_fires[i]) /
                            static_cast<double>(report.fired);
    EXPECT_NEAR(observed, expected, 0.015) << "tenant " << i;
    if (i > 0) {
      EXPECT_LT(report.tenant_fires[i], report.tenant_fires[i - 1]);
    }
  }
}

TEST(TrafficDriverTest, UniformTenantsWhenZipfDisabled) {
  TrafficOptions options;
  options.num_tenants = 4;
  options.tenant_zipf = 0.0;
  options.total_requests = 20000;
  FakeClock clock;
  TrafficDriver driver(options, OneStepSessions(), &clock);
  const DriveReport report = driver.Drive([](const TrafficRequest&) {});
  for (const uint64_t fires : report.tenant_fires) {
    EXPECT_NEAR(static_cast<double>(fires) / 20000.0, 0.25, 0.02);
  }
}

// ------------------------------------------------------- sessions & seeds --

TEST(TrafficDriverTest, SessionWalkAdvancesStepwisePerTenant) {
  TrafficOptions options;
  options.num_tenants = 3;
  options.total_requests = 5000;
  FakeClock clock;
  TrafficDriver driver(options, ChainSessions(4, 5), &clock);

  struct Last {
    size_t session = 0;
    size_t step = 0;
    bool seen = false;
  };
  std::vector<Last> last(options.num_tenants);
  driver.Drive([&](const TrafficRequest& request) {
    ASSERT_LT(request.tenant, last.size());
    ASSERT_LT(request.session, 4u);
    ASSERT_LT(request.step, 5u);
    EXPECT_EQ(request.table_id, "t" + std::to_string(request.tenant));
    Last& prev = last[request.tenant];
    if (prev.seen && prev.step + 1 < 5) {
      // Mid-session: the next request MUST be the next refinement of the
      // same session.
      EXPECT_EQ(request.session, prev.session);
      EXPECT_EQ(request.step, prev.step + 1);
    } else {
      // First request, or the previous session finished: a fresh session
      // (possibly the same index again) starts at its first step.
      EXPECT_EQ(request.step, 0u);
    }
    prev = {request.session, request.step, true};
  });
}

TEST(TrafficDriverTest, SameSeedSameSchedule) {
  TrafficOptions options;
  options.rate_rps = 500.0;
  options.num_tenants = 4;
  options.total_requests = 2000;
  options.seed = 99;

  struct Fire {
    size_t tenant;
    size_t session;
    size_t step;
    double scheduled;
    bool operator==(const Fire& other) const {
      return tenant == other.tenant && session == other.session &&
             step == other.step && scheduled == other.scheduled;
    }
  };
  auto run = [&] {
    FakeClock clock;
    TrafficDriver driver(options, ChainSessions(3, 4), &clock);
    std::vector<Fire> fires;
    driver.Drive([&](const TrafficRequest& request) {
      fires.push_back({request.tenant, request.session, request.step,
                       request.scheduled_seconds});
    });
    return fires;
  };
  EXPECT_TRUE(run() == run());
}

// ---------------------------------------------------- open-loop vs engine --

SyntheticTableSpec TinySpec(size_t rows = 400) {
  SyntheticTableSpec spec;
  spec.num_rows = rows;
  spec.chunk_rows = 128;
  spec.seed = 21;
  spec.columns = {
      SyntheticColumnSpec::Numeric("a",
                                   ColumnDataDistribution::Uniform(0.0, 100.0)),
      SyntheticColumnSpec::Categorical(
          "c", ColumnDataDistribution::Uniform(0.0, 1.0, 3)),
  };
  return spec;
}

SubTabConfig TinyConfig() {
  SubTabConfig config;
  config.k = 4;
  config.l = 3;
  config.embedding.dim = 8;
  config.embedding.epochs = 1;
  config.seed = 7;
  return config;
}

TEST(TrafficDriverTest, OpenLoopDoesNotSlowForStalledEngine) {
  service::EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  options.tracing = false;
  service::ServingEngine engine(options);
  const SyntheticTable data = GenerateSyntheticTable(TinySpec());
  ASSERT_TRUE(engine.RegisterTable("t0", data.table, TinyConfig()).ok());

  // Pin the single worker: every admitted request stays queued, so past the
  // queue bound the engine sheds everything.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  engine.SubmitBarrierTaskForTesting([opened] { opened.wait(); });

  TrafficOptions traffic;
  traffic.rate_rps = 5000.0;
  traffic.num_tenants = 1;
  traffic.total_requests = 200;
  FakeClock clock;
  TrafficDriver driver(traffic, OneStepSessions(), &clock);

  std::vector<std::shared_future<service::SelectResponse>> futures;
  uint64_t next_seed = 0;
  const DriveReport report = driver.Drive([&](const TrafficRequest& request) {
    service::SelectRequest select;
    select.table_id = request.table_id;
    select.query = *request.query;
    select.seed = next_seed++;  // Distinct -> no cache hit / coalescing.
    futures.push_back(engine.SubmitSelect(select));
  });

  // The driver fired its whole schedule regardless of the stall, on time.
  ASSERT_EQ(report.fired, 200u);
  EXPECT_EQ(report.max_lag_seconds, 0.0);

  // Sheds resolved immediately (already-ready futures, kUnavailable), and
  // nothing retried: exactly one submission per fired request.
  service::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.requests_submitted, 200u);
  EXPECT_GE(stats.pipeline.requests_shed, 190u);
  size_t ready_sheds = 0;
  for (const auto& future : futures) {
    if (future.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready &&
        future.get().status.code() == StatusCode::kUnavailable) {
      ++ready_sheds;
    }
  }
  EXPECT_EQ(ready_sheds, stats.pipeline.requests_shed);

  gate.set_value();
  engine.Drain();
  // Draining completes the admitted remainder without new submissions.
  // Every resolved request counts as completed (sheds included); only the
  // sheds failed.
  stats = engine.Stats();
  EXPECT_EQ(stats.requests_submitted, 200u);
  EXPECT_EQ(stats.requests_completed, 200u);
  EXPECT_EQ(stats.requests_failed, stats.pipeline.requests_shed);
}

// TSan matrix case: one thread drives real-time traffic into the engine
// while another appends batches through a registered stream — the race
// surface is the driver's sink firing against concurrently republished
// models.
TEST(TrafficDriverTest, ConcurrentDriveWhileStreamAppends) {
  const SyntheticTable base = GenerateSyntheticTable(TinySpec(300));
  stream::StreamSessionOptions session_options;
  session_options.config = TinyConfig();
  auto session = stream::StreamSession::Open(base.table, session_options);
  ASSERT_TRUE(session.ok());

  service::EngineOptions options;
  options.num_threads = 2;
  options.tracing = false;
  service::ServingEngine engine(options);
  ASSERT_TRUE(engine.RegisterStream("t0", *session).ok());

  std::atomic<bool> stop{false};
  std::thread appender([&] {
    SyntheticTableSpec delta_spec = TinySpec(64);
    for (uint64_t i = 0; !stop.load(std::memory_order_relaxed) && i < 64;
         ++i) {
      delta_spec.seed = 100 + i;
      const SyntheticTable delta = GenerateSyntheticTable(delta_spec);
      ASSERT_TRUE(engine.Append("t0", delta.table).ok());
    }
  });

  TrafficOptions traffic;
  traffic.rate_rps = 2000.0;
  traffic.num_tenants = 1;
  traffic.total_requests = 300;
  TrafficDriver driver(traffic, OneStepSessions());  // Real SteadyClock.
  uint64_t next_seed = 0;
  const DriveReport report = driver.Drive([&](const TrafficRequest& request) {
    service::SelectRequest select;
    select.table_id = request.table_id;
    select.query = *request.query;
    select.seed = next_seed++;
    engine.SubmitSelect(select);
  });
  stop.store(true, std::memory_order_relaxed);
  appender.join();
  engine.Drain();

  EXPECT_EQ(report.fired, 300u);
  const service::EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.requests_submitted, 300u);
  EXPECT_EQ(stats.requests_completed, 300u);  // Sheds resolve as completed.
}

}  // namespace
}  // namespace subtab::workload
