// Unit tests for the util substrate: Status/Result, RNG, bitset, strings,
// stopwatch, parallel_for.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "subtab/util/alias_table.h"
#include "subtab/util/bitset.h"
#include "subtab/util/latency_histogram.h"
#include "subtab/util/parallel.h"
#include "subtab/util/rng.h"
#include "subtab/util/status.h"
#include "subtab/util/stopwatch.h"
#include "subtab/util/string_util.h"

namespace subtab {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x * 2;
}

Result<int> ChainedParse(int x) {
  SUBTAB_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_FALSE(ChainedParse(0).ok());
  Result<int> ok = ChainedParse(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(10);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) ones += (rng.Categorical(w) == 1);
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalIgnoresZeroWeights) {
  Rng rng(11);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.Categorical(w), 1u);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(12);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Zipf(5, 1.5)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<size_t> s = rng.SampleWithoutReplacement(20, 8);
    std::set<size_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 8u);
    for (size_t v : s) EXPECT_LT(v, 20u);
  }
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(14);
  std::vector<size_t> s = rng.SampleWithoutReplacement(6, 6);
  std::sort(s.begin(), s.end());
  EXPECT_EQ(s, (std::vector<size_t>{0, 1, 2, 3, 4, 5}));
}

TEST(RngTest, SampleWithoutReplacementUniformity) {
  // Every element should be picked roughly count/n of the time.
  Rng rng(15);
  std::vector<int> hits(10, 0);
  const int trials = 10000;
  for (int t = 0; t < trials; ++t) {
    for (size_t v : rng.SampleWithoutReplacement(10, 3)) ++hits[v];
  }
  for (int h : hits) EXPECT_NEAR(static_cast<double>(h) / trials, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(17);
  Rng child = a.Fork();
  EXPECT_NE(a.Next(), child.Next());
}

// ---------------------------------------------------------------- Bitset --

TEST(BitsetTest, SetTestClear) {
  Bitset b(100);
  EXPECT_FALSE(b.Test(63));
  b.Set(63);
  b.Set(64);
  EXPECT_TRUE(b.Test(63));
  EXPECT_TRUE(b.Test(64));
  b.Clear(63);
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(BitsetTest, ConstructAllSetRespectsSize) {
  Bitset b(70, true);
  EXPECT_EQ(b.Count(), 70u);
}

TEST(BitsetTest, IntersectAndUnion) {
  Bitset a(10);
  Bitset b(10);
  a.Set(1);
  a.Set(5);
  b.Set(5);
  b.Set(7);
  EXPECT_EQ(Bitset::IntersectionCount(a, b), 1u);
  Bitset i = Bitset::Intersection(a, b);
  EXPECT_TRUE(i.Test(5));
  EXPECT_EQ(i.Count(), 1u);
  a.UnionWith(b);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(BitsetTest, ToIndicesAscending) {
  Bitset b(130);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_EQ(b.ToIndices(), (std::vector<uint32_t>{0, 64, 129}));
}

TEST(BitsetTest, AnySet) {
  Bitset b(65);
  EXPECT_FALSE(b.AnySet());
  b.Set(64);
  EXPECT_TRUE(b.AnySet());
}

TEST(BitsetTest, Equality) {
  Bitset a(32);
  Bitset b(32);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_FALSE(a == b);
}

// --------------------------------------------------------------- Strings --

TEST(StringTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(StringTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(StrTrim("  x y  "), "x y");
  EXPECT_EQ(StrTrim("\t\n"), "");
  EXPECT_EQ(StrTrim("abc"), "abc");
}

TEST(StringTest, Lower) { EXPECT_EQ(StrLower("AbC9"), "abc9"); }

TEST(StringTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringTest, LooksNumericRejectsInfNanEmpty) {
  EXPECT_TRUE(LooksNumeric("42"));
  EXPECT_TRUE(LooksNumeric("-1.25e-3"));
  EXPECT_FALSE(LooksNumeric("inf"));
  EXPECT_FALSE(LooksNumeric(""));
  EXPECT_FALSE(LooksNumeric("12a"));
}

TEST(StringTest, NormalizeCell) {
  EXPECT_EQ(NormalizeCell("  Hello World! "), "hello_world_");
  EXPECT_EQ(NormalizeCell("A-1.b+c"), "a-1.b+c");
}

TEST(StringTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StringTest, FormatCell) {
  EXPECT_EQ(FormatCell(3.0), "3");
  EXPECT_EQ(FormatCell(3.14159), "3.142");
  EXPECT_EQ(FormatCell(std::nan("")), "NaN");
  EXPECT_EQ(FormatCell(-0.5), "-0.5");
}

// ------------------------------------------------------------- Stopwatch --

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(static_cast<double>(i));
  const double first = w.ElapsedSeconds();
  EXPECT_GT(first, 0.0);
  EXPECT_GE(w.ElapsedSeconds(), first);  // Monotone.
  w.Reset();
  EXPECT_LT(w.ElapsedSeconds(), first + 1.0);
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d(0.0);
  EXPECT_TRUE(d.Expired());
}

TEST(DeadlineTest, LargeBudgetNotExpired) {
  Deadline d(1e6);
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingSeconds(), 0.0);
}

// -------------------------------------------------------------- Parallel --

TEST(ParallelTest, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 4, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, SingleThreadRunsInline) {
  size_t calls = 0;
  ParallelFor(10, 1, [&](size_t shard, size_t begin, size_t end) {
    EXPECT_EQ(shard, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelTest, EmptyRangeNoCalls) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, MoreThreadsThanWork) {
  std::atomic<int> total{0};
  ParallelFor(3, 16, [&](size_t, size_t begin, size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ParallelTest, HardwareThreadsPositive) { EXPECT_GE(HardwareThreads(), 1u); }

TEST(ParallelTest, ForEachCoversEveryIndexExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}, size_t{0}}) {
    std::vector<std::atomic<int>> hits(37);
    ParallelForEach(hits.size(), threads,
                    [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
  }
  // More threads than tasks, and the empty range.
  std::atomic<int> count{0};
  ParallelForEach(2, 16, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 2);
  bool called = false;
  ParallelForEach(0, 4, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(LatencyHistogramTest, PercentilesBracketRecordedLatencies) {
  LatencyHistogram hist;
  // 90 fast (~1 ms) and 10 slow (~400 ms) samples.
  for (int i = 0; i < 90; ++i) hist.Record(1e-3);
  for (int i = 0; i < 10; ++i) hist.Record(0.4);
  const LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.sum_seconds, 0.09 + 4.0, 1e-6);
  // Bucket resolution is a factor of two: p50 must land near 1 ms and p99
  // near 400 ms, each within its power-of-two bucket.
  EXPECT_GE(snap.Percentile(0.50), 0.5e-3);
  EXPECT_LE(snap.Percentile(0.50), 2e-3);
  EXPECT_GE(snap.Percentile(0.99), 0.2);
  EXPECT_LE(snap.Percentile(0.99), 0.8);
  EXPECT_GE(snap.Percentile(0.99), snap.Percentile(0.50));
  EXPECT_NEAR(snap.MeanSeconds(), 4.09 / 100.0, 1e-4);
}

TEST(LatencyHistogramTest, EmptyAndEdgeCases) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.TakeSnapshot().Percentile(0.99), 0.0);
  hist.Record(0.0);
  hist.Record(-1.0);  // Clamped, not UB.
  EXPECT_EQ(hist.TakeSnapshot().count, 2u);
}

// Bucket midpoints the histogram reports: 100us lands in bucket 7
// ([64, 128)us, mid 96us); 400ms lands in bucket 19 ([262, 524)ms,
// mid ~393ms). Pinning the exact returns makes the nearest-rank math
// observable through the bucketing.
constexpr double kFastMid = 96e-6;
constexpr double kSlowMid = 393216e-6;

TEST(LatencyHistogramTest, NearestRankP50OfTwoIsTheSmaller) {
  LatencyHistogram hist;
  hist.Record(100e-6);
  hist.Record(0.4);
  const LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  // Nearest-rank p50 of two samples is the 1st (ceil(0.5*2) = 1), not the
  // 2nd — the off-by-one this pins reported the larger sample.
  EXPECT_DOUBLE_EQ(snap.Percentile(0.50), kFastMid);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.51), kSlowMid);
  EXPECT_DOUBLE_EQ(snap.Percentile(1.0), kSlowMid);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.0), kFastMid);
}

TEST(LatencyHistogramTest, NearestRankPinnedOnRoundCounts) {
  // 95 fast + 5 slow: p95 is the 95th smallest (ceil(0.95*100) = 95) —
  // still fast; p96 and p99 cross into the slow tail.
  LatencyHistogram hist;
  for (int i = 0; i < 95; ++i) hist.Record(100e-6);
  for (int i = 0; i < 5; ++i) hist.Record(0.4);
  const LatencyHistogram::Snapshot snap = hist.TakeSnapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.50), kFastMid);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.95), kFastMid);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.96), kSlowMid);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), kSlowMid);

  // 50 fast + 50 slow: p50 = 50th sample = fast (floor-rank reported slow).
  LatencyHistogram half;
  for (int i = 0; i < 50; ++i) half.Record(100e-6);
  for (int i = 0; i < 50; ++i) half.Record(0.4);
  EXPECT_DOUBLE_EQ(half.TakeSnapshot().Percentile(0.50), kFastMid);

  // A single sample answers every percentile with its own bucket.
  LatencyHistogram one;
  one.Record(0.4);
  EXPECT_DOUBLE_EQ(one.TakeSnapshot().Percentile(0.50), kSlowMid);
  EXPECT_DOUBLE_EQ(one.TakeSnapshot().Percentile(0.99), kSlowMid);
}

// ----------------------------------------------------------- Alias table --

TEST(AliasTableTest, VoseInvariantsAndZeroWeightNeverDrawn) {
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  AliasTable alias(weights);
  ASSERT_EQ(alias.size(), 3u);
  // Every slot's alias must point at a valid slot.
  for (size_t s = 0; s < alias.size(); ++s) {
    EXPECT_GE(alias.prob(s), 0.0);
    EXPECT_LE(alias.prob(s), 1.0);
    EXPECT_LT(alias.alias(s), alias.size());
  }
  Rng rng(42);
  size_t hits[3] = {0, 0, 0};
  const size_t draws = 40000;
  for (size_t i = 0; i < draws; ++i) ++hits[alias.Sample(rng)];
  EXPECT_EQ(hits[1], 0u);  // Zero weight: never drawn.
  // Empirical frequencies track 1:3 within a loose band.
  EXPECT_NEAR(static_cast<double>(hits[0]) / draws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / draws, 0.75, 0.02);
}

TEST(AliasTableTest, DeterministicAcrossInstances) {
  const std::vector<double> weights = {0.5, 2.0, 1.0, 0.25, 4.0};
  AliasTable a(weights);
  AliasTable b(weights);
  Rng ra(7);
  Rng rb(7);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.Sample(ra), b.Sample(rb));
  // A different seed yields a different draw sequence somewhere.
  Rng rc(8);
  bool diverged = false;
  Rng ra2(7);
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = a.Sample(ra2) != a.Sample(rc);
  }
  EXPECT_TRUE(diverged);
}

TEST(AliasTableTest, AllZeroAndSingleSlotDegenerateToUniform) {
  AliasTable zero(std::vector<double>{0.0, 0.0, 0.0, 0.0});
  Rng rng(3);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(zero.Sample(rng));
  EXPECT_EQ(seen.size(), 4u);  // Uniform fallback reaches every slot.

  AliasTable single(std::vector<double>{5.0});
  for (int i = 0; i < 5; ++i) EXPECT_EQ(single.Sample(rng), 0u);
}

}  // namespace
}  // namespace subtab
