// The workload forge's data half (workload/synthetic_table.h): counter-based
// determinism (identical fingerprints across chunk layouts), distribution
// shape, null/distinct accounting, and — the load-bearing property — that
// planted association rules survive the full binning + mining pipeline at
// their configured support.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "subtab/binning/binned_table.h"
#include "subtab/core/fingerprint.h"
#include "subtab/rules/miner.h"
#include "subtab/util/rng.h"
#include "subtab/workload/synthetic_table.h"

namespace subtab::workload {
namespace {

SyntheticTableSpec BaseSpec(size_t rows, size_t chunk_rows = 4096,
                            uint64_t seed = 11) {
  SyntheticTableSpec spec;
  spec.name = "forge";
  spec.num_rows = rows;
  spec.chunk_rows = chunk_rows;
  spec.seed = seed;
  spec.columns = {
      SyntheticColumnSpec::Numeric("amount",
                                   ColumnDataDistribution::Pareto(1.0, 1.5)),
      SyntheticColumnSpec::Numeric(
          "score", ColumnDataDistribution::NormalSkewed(50.0, 12.0, 4.0)),
      SyntheticColumnSpec::Numeric("age",
                                   ColumnDataDistribution::Uniform(18.0, 90.0)),
      SyntheticColumnSpec::Categorical(
          "region", ColumnDataDistribution::Uniform(0.0, 1.0, 4)),
      SyntheticColumnSpec::Categorical(
          "device", ColumnDataDistribution::Uniform(0.0, 1.0, 4)),
      SyntheticColumnSpec::Categorical(
          "outcome", ColumnDataDistribution::Uniform(0.0, 1.0, 4)),
  };
  return spec;
}

// ------------------------------------------------------------ determinism --

TEST(SyntheticTableTest, FingerprintIndependentOfChunkLayout) {
  SyntheticTableSpec spec = BaseSpec(20000, 512);
  const uint64_t fp512 = TableFingerprint(GenerateSyntheticTable(spec).table);

  spec.chunk_rows = 4096;
  EXPECT_EQ(TableFingerprint(GenerateSyntheticTable(spec).table), fp512);

  spec.chunk_rows = 0;  // One chunk for the whole table.
  EXPECT_EQ(TableFingerprint(GenerateSyntheticTable(spec).table), fp512);

  spec.chunk_rows = 512;  // Regeneration is bit-identical, too.
  EXPECT_EQ(TableFingerprint(GenerateSyntheticTable(spec).table), fp512);
}

TEST(SyntheticTableTest, SeedChangesContent) {
  SyntheticTableSpec spec = BaseSpec(5000);
  const uint64_t fp = TableFingerprint(GenerateSyntheticTable(spec).table);
  spec.seed = 12;
  EXPECT_NE(TableFingerprint(GenerateSyntheticTable(spec).table), fp);
}

TEST(SyntheticTableTest, ChunkLayoutMatchesSpec) {
  const SyntheticTableSpec spec = BaseSpec(10000, 1024);
  const SyntheticTable data = GenerateSyntheticTable(spec);
  ASSERT_EQ(data.table.num_rows(), 10000u);
  for (size_t c = 0; c < data.table.num_columns(); ++c) {
    // ceil(10000 / 1024) = 10 chunks, formed by the append path.
    EXPECT_EQ(data.table.column(c).num_chunks(), 10u);
  }
}

// ------------------------------------------------------ distribution shape --

TEST(SyntheticTableTest, ContinuousSampleShape) {
  Rng rng(3);
  const auto uniform = ColumnDataDistribution::Uniform(18.0, 90.0);
  const auto pareto = ColumnDataDistribution::Pareto(2.0, 1.5);
  const auto skewed = ColumnDataDistribution::NormalSkewed(50.0, 12.0, 4.0);

  const size_t n = 100000;
  double uniform_sum = 0.0, skew_sum = 0.0;
  std::vector<double> pareto_samples;
  pareto_samples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double u0 = rng.UniformDouble();
    const double u1 = rng.UniformDouble();
    const double u = uniform.SampleContinuous(u0, u1);
    ASSERT_GE(u, 18.0);
    ASSERT_LT(u, 90.0);
    uniform_sum += u;
    const double p = pareto.SampleContinuous(u0, u1);
    ASSERT_GE(p, 2.0);  // Pareto support is [scale, inf).
    pareto_samples.push_back(p);
    skew_sum += skewed.SampleContinuous(u0, u1);
  }
  EXPECT_NEAR(uniform_sum / n, (18.0 + 90.0) / 2.0, 0.5);

  // Pareto shape 1.5 has infinite variance — test the median, not the mean:
  // scale * 2^(1/shape).
  std::nth_element(pareto_samples.begin(), pareto_samples.begin() + n / 2,
                   pareto_samples.end());
  EXPECT_NEAR(pareto_samples[n / 2], 2.0 * std::pow(2.0, 1.0 / 1.5), 0.05);

  // Skew-normal mean: location + scale * delta * sqrt(2/pi).
  const double delta = 4.0 / std::sqrt(1.0 + 16.0);
  const double mean = 50.0 + 12.0 * delta * std::sqrt(2.0 / M_PI);
  EXPECT_NEAR(skew_sum / n, mean, 0.3);
}

TEST(SyntheticTableTest, TableMarginalsMatchTheory) {
  const SyntheticTableSpec spec = BaseSpec(60000);
  const SyntheticTable data = GenerateSyntheticTable(spec);
  const Column& age = data.table.column(data.ColumnIndex("age"));
  double sum = 0.0;
  double lo = 1e300, hi = -1e300;
  for (size_t r = 0; r < age.size(); ++r) {
    const double v = age.num_value(r);
    sum += v;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_NEAR(sum / static_cast<double>(age.size()), 54.0, 0.5);
  EXPECT_GE(lo, 18.0);
  EXPECT_LT(hi, 90.0);

  const Column& amount = data.table.column(data.ColumnIndex("amount"));
  double amount_min = 0.0, amount_max = 0.0;
  ASSERT_TRUE(amount.NumericRange(&amount_min, &amount_max));
  EXPECT_GE(amount_min, 1.0);    // Pareto scale.
  EXPECT_GT(amount_max, 10.0);   // The heavy tail actually showed up.
}

TEST(SyntheticTableTest, GridQuantizationRoundTrips) {
  const auto dist = ColumnDataDistribution::Uniform(10.0, 20.0, 8);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(dist.IndexOfValue(dist.ValueOfIndex(i)), i);
  }
  EXPECT_EQ(dist.IndexOfValue(-100.0), 0u);   // Clamped.
  EXPECT_EQ(dist.IndexOfValue(1000.0), 7u);
}

// ----------------------------------------------------- null/distinct books --

TEST(SyntheticTableTest, NullFractionAndDistinctCounts) {
  SyntheticTableSpec spec = BaseSpec(50000);
  spec.columns[0].distribution.null_fraction = 0.1;   // amount
  spec.columns[2].distribution.num_distinct = 16;     // age, quantized
  const SyntheticTable data = GenerateSyntheticTable(spec);

  const Column& amount = data.table.column(data.ColumnIndex("amount"));
  const double null_rate = static_cast<double>(amount.null_count()) /
                           static_cast<double>(amount.size());
  EXPECT_NEAR(null_rate, 0.1, 0.01);

  const Column& age = data.table.column(data.ColumnIndex("age"));
  EXPECT_EQ(age.null_count(), 0u);
  EXPECT_EQ(age.distinct_count(), 16u);

  const Column& region = data.table.column(data.ColumnIndex("region"));
  EXPECT_EQ(region.dictionary().size(), 4u);
  EXPECT_EQ(region.distinct_count(), 4u);
}

// --------------------------------------------------------- planted rules --

SyntheticTableSpec RuleSpec(size_t rows) {
  SyntheticTableSpec spec = BaseSpec(rows);
  spec.rules = {
      PlantedRule{{{"region", 1}, {"device", 2}}, {"outcome", 0}, 0.12, 0.9},
      PlantedRule{{{"region", 2}, {"device", 0}}, {"outcome", 3}, 0.08, 0.85},
  };
  return spec;
}

TEST(SyntheticTableTest, PlantedRuleGroundTruthCounts) {
  const SyntheticTableSpec spec = RuleSpec(50000);
  const SyntheticTable data = GenerateSyntheticTable(spec);
  const Column& region = data.table.column(data.ColumnIndex("region"));
  const Column& device = data.table.column(data.ColumnIndex("device"));
  const Column& outcome = data.table.column(data.ColumnIndex("outcome"));

  // Background rows (outside every rule region) also hit a rule's lhs combo
  // by coincidence — with 4x4 uniform categories, 1/16 of them — and then
  // match the rhs only 1/4 of the time. The table-level support and
  // confidence are therefore the planted values DILUTED by that background,
  // and the expected mixtures are exact:
  double total_support = 0.0;
  for (const PlantedRule& rule : spec.rules) total_support += rule.support;
  const double background = 1.0 - total_support;

  for (const PlantedRule& rule : spec.rules) {
    size_t lhs_rows = 0, both_rows = 0;
    for (size_t r = 0; r < data.table.num_rows(); ++r) {
      if (region.is_null(r) || device.is_null(r) || outcome.is_null(r)) {
        continue;
      }
      const bool lhs =
          region.cat_value(r) == CategoryOfIndex(rule.lhs[0].second) &&
          device.cat_value(r) == CategoryOfIndex(rule.lhs[1].second);
      if (!lhs) continue;
      ++lhs_rows;
      if (outcome.cat_value(r) == CategoryOfIndex(rule.rhs.second)) {
        ++both_rows;
      }
    }
    const double n = static_cast<double>(data.table.num_rows());
    const double expected_lhs = rule.support + background / 16.0;
    const double expected_both =
        rule.support * rule.confidence + background / 16.0 / 4.0;
    EXPECT_NEAR(static_cast<double>(lhs_rows) / n, expected_lhs, 0.01);
    EXPECT_NEAR(static_cast<double>(both_rows) / n, expected_both, 0.01);
    EXPECT_NEAR(static_cast<double>(both_rows) / static_cast<double>(lhs_rows),
                expected_both / expected_lhs, 0.03);
  }
}

TEST(SyntheticTableTest, PlantedRulesRecoveredByMiner) {
  const SyntheticTableSpec spec = RuleSpec(40000);
  const SyntheticTable data = GenerateSyntheticTable(spec);
  const BinnedTable binned = BinnedTable::Compute(data.table);

  RuleMiningOptions mining;
  mining.apriori.min_support = 0.05;
  // Table-level confidence is the planted confidence diluted by background
  // lhs coincidences (see PlantedRuleGroundTruthCounts) — threshold below
  // the diluted values, not the planted ones.
  mining.min_confidence = 0.55;
  mining.min_rule_size = 3;
  const RuleSet mined = MineRules(binned, mining);
  ASSERT_FALSE(mined.rules.empty());

  double total_support = 0.0;
  for (const PlantedRule& rule : spec.rules) total_support += rule.support;
  const double background = 1.0 - total_support;

  for (const PlantedRule& planted : spec.rules) {
    const Rule expected = PlantedRuleTokens(data, binned, planted);
    const double expected_support =
        planted.support * planted.confidence + background / 16.0 / 4.0;
    const double expected_lhs = planted.support + background / 16.0;
    bool found = false;
    for (const Rule& rule : mined.rules) {
      if (!rule.SameTokens(expected)) continue;
      found = true;
      EXPECT_NEAR(rule.support, expected_support, 0.015);
      EXPECT_NEAR(rule.confidence, expected_support / expected_lhs, 0.04);
    }
    EXPECT_TRUE(found) << "planted rule not mined (support "
                       << planted.support << ")";
  }
}

// ------------------------------------------------------- cluster structure --

/// Total variation distance between the joint (a, b) distribution and the
/// product of marginals — zero iff independent.
double JointDeviation(const Column& a, const Column& b, size_t cardinality) {
  const size_t n = a.size();
  std::vector<double> pa(cardinality, 0.0), pb(cardinality, 0.0);
  std::vector<double> joint(cardinality * cardinality, 0.0);
  const double w = 1.0 / static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    const auto ia = static_cast<size_t>(a.cat_code(r));
    const auto ib = static_cast<size_t>(b.cat_code(r));
    pa[ia] += w;
    pb[ib] += w;
    joint[ia * cardinality + ib] += w;
  }
  double tv = 0.0;
  for (size_t i = 0; i < cardinality; ++i) {
    for (size_t j = 0; j < cardinality; ++j) {
      tv += std::abs(joint[i * cardinality + j] - pa[i] * pb[j]);
    }
  }
  return tv / 2.0;
}

TEST(SyntheticTableTest, ProfileAffinityCreatesCrossColumnCorrelation) {
  SyntheticTableSpec spec;
  spec.num_rows = 40000;
  spec.chunk_rows = 8192;
  spec.seed = 5;
  spec.num_profiles = 4;
  spec.profile_zipf = 1.0;
  spec.columns = {
      SyntheticColumnSpec::Categorical(
          "a", ColumnDataDistribution::Uniform(0.0, 1.0, 8), 0.7),
      SyntheticColumnSpec::Categorical(
          "b", ColumnDataDistribution::Uniform(0.0, 1.0, 8), 0.7),
  };
  const SyntheticTable with = GenerateSyntheticTable(spec);
  const double correlated =
      JointDeviation(with.table.column(0), with.table.column(1), 8);

  spec.columns[0].profile_affinity = 0.0;
  spec.columns[1].profile_affinity = 0.0;
  const SyntheticTable without = GenerateSyntheticTable(spec);
  const double independent =
      JointDeviation(without.table.column(0), without.table.column(1), 8);

  EXPECT_GT(correlated, 0.15);
  EXPECT_LT(independent, 0.04);
}

TEST(SyntheticTableTest, PreferredIndexIsStableAndInRange) {
  SyntheticTableSpec spec = BaseSpec(100);
  spec.num_profiles = 8;
  for (size_t profile = 0; profile < 8; ++profile) {
    const size_t idx = PreferredIndex(spec, profile, 3);  // region, 4 values.
    EXPECT_LT(idx, 4u);
    EXPECT_EQ(PreferredIndex(spec, profile, 3), idx);
  }
}

}  // namespace
}  // namespace subtab::workload
