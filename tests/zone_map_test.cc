// Zone-map pruning and dictionary-code predicate evaluation
// (table/chunk.h ChunkStats + table/query.cc ZoneRefutes/code_verdict).
// The contract under test is bit-identity: pruning on and off must produce
// identical scopes over every chunk layout, thread count, query shape, and
// stream append — pruning may only skip rows a conjunct provably fails.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "subtab/stream/streaming_table.h"
#include "subtab/table/query.h"

namespace subtab {
namespace {

QueryExecOptions PruningOn(size_t threads = 1) {
  QueryExecOptions exec;
  exec.num_threads = threads;
  exec.min_parallel_rows = 1;
  exec.zone_map_pruning = true;
  return exec;
}

QueryExecOptions PruningOff(size_t threads = 1) {
  QueryExecOptions exec = PruningOn(threads);
  exec.zone_map_pruning = false;
  return exec;
}

/// Asserts the pruned scan returns exactly the unpruned scan's scope (rows,
/// cols, order) and returns the pruned scan's stats for further checks.
ScanStats ExpectBitIdentical(const Table& table, const SpQuery& query) {
  Result<QueryScope> off = ResolveQueryScope(table, query, PruningOff());
  ScanStats stats;
  for (const size_t threads : {size_t{1}, size_t{3}}) {
    Result<QueryScope> on = ResolveQueryScope(table, query, PruningOn(threads));
    EXPECT_EQ(on.ok(), off.ok()) << query.ToString();
    if (!on.ok() || !off.ok()) continue;
    EXPECT_EQ(on->row_ids, off->row_ids) << query.ToString();
    EXPECT_EQ(on->col_ids, off->col_ids) << query.ToString();
    if (threads == 1) stats = on->stats;
  }
  return stats;
}

// ---- Seal-time stats correctness -----------------------------------------

TEST(ChunkStatsTest, NumericSealTimeStats) {
  Column col = Column::Numeric(
      "v", {3.0, -1.5, std::nan(""), 7.25, 0.0});
  col.SealTail();
  ASSERT_EQ(col.chunks().size(), 1u);
  const ChunkStats& s = col.chunks()[0]->stats();
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.null_count, 1u);  // The NaN input lands as a null.
  EXPECT_TRUE(s.has_range);
  EXPECT_EQ(s.min, -1.5);
  EXPECT_EQ(s.max, 7.25);
  EXPECT_FALSE(s.has_code_set);
}

TEST(ChunkStatsTest, AllNullNumericChunkHasNoRange) {
  Column col("v", ColumnType::kNumeric);
  col.AppendNull();
  col.AppendNumeric(std::nan(""));
  col.SealTail();
  ASSERT_EQ(col.chunks().size(), 1u);
  const ChunkStats& s = col.chunks()[0]->stats();
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.null_count, 2u);
  EXPECT_FALSE(s.has_range);
}

TEST(ChunkStatsTest, CategoricalCodeSetSortedAndDistinct) {
  Column col = Column::Categorical("c", {"b", "a", "b", "", "c", "a"});
  col.SealTail();
  ASSERT_EQ(col.chunks().size(), 1u);
  const ChunkStats& s = col.chunks()[0]->stats();
  EXPECT_TRUE(s.valid);
  EXPECT_EQ(s.null_count, 1u);  // "" is null.
  ASSERT_TRUE(s.has_code_set);
  // First-seen codes: b=0, a=1, c=2; the set is sorted and deduplicated.
  EXPECT_EQ(s.codes, (std::vector<int32_t>{0, 1, 2}));
}

TEST(ChunkStatsTest, CategoricalCodeSetDroppedPastCap) {
  Column col("c", ColumnType::kCategorical);
  for (size_t i = 0; i <= ChunkStats::kMaxTrackedCodes; ++i) {
    col.AppendCategorical("v" + std::to_string(i));
  }
  col.SealTail();
  ASSERT_EQ(col.chunks().size(), 1u);
  const ChunkStats& s = col.chunks()[0]->stats();
  EXPECT_TRUE(s.valid);
  EXPECT_FALSE(s.has_code_set);
  EXPECT_TRUE(s.codes.empty());
}

TEST(ChunkStatsTest, AllNullCategoricalChunkHasEmptyCodeSet) {
  Column col("c", ColumnType::kCategorical);
  col.AppendNull();
  col.SealTail();
  const ChunkStats& s = col.chunks()[0]->stats();
  ASSERT_TRUE(s.valid);
  EXPECT_TRUE(s.has_code_set);
  EXPECT_TRUE(s.codes.empty());
}

TEST(ChunkStatsTest, OpenTailHasNoStats) {
  Column col("v", ColumnType::kNumeric);
  col.AppendNumeric(1.0);
  EXPECT_EQ(col.chunks().size(), 0u);  // Still the open tail: nothing sealed.
  col.SealTail();
  EXPECT_TRUE(col.chunks()[0]->stats().valid);
}

// ---- Zone pruning on chunked tables --------------------------------------

/// 0..n-1 ascending in `ts`, chunked `chunk_rows` at a time — every chunk's
/// zone is a tight disjoint interval, so narrowing range queries refute most
/// chunks.
Table ClusteredTable(size_t n, size_t chunk_rows) {
  std::vector<double> ts(n);
  std::vector<std::string> tag(n);
  for (size_t i = 0; i < n; ++i) {
    ts[i] = static_cast<double>(i);
    tag[i] = (i % 7 == 0) ? "hot" : "cold";
  }
  Result<Table> t = Table::Make({Column::Numeric("ts", ts).Rechunked(chunk_rows),
                                 Column::Categorical("tag", tag)});
  EXPECT_TRUE(t.ok());
  return std::move(t).value();
}

TEST(ZoneMapTest, RangeQueryPrunesRefutedChunks) {
  Table t = ClusteredTable(1000, 100);  // ts has 10 chunks of 100.
  SpQuery q;
  q.filters = {Predicate::Num("ts", CmpOp::kGe, 450.0),
               Predicate::Num("ts", CmpOp::kLt, 550.0)};
  const ScanStats stats = ExpectBitIdentical(t, q);
  // Chunks [400,500) and [500,600) survive; the other 8 are refuted — per
  // predicate, so both conjuncts' walks count.
  EXPECT_EQ(stats.chunks_pruned, 16u);
  EXPECT_EQ(stats.chunks_scanned, 4u);
  EXPECT_EQ(stats.rows_visited, 200u);
  EXPECT_EQ(stats.rows_matched, 100u);

  Result<QueryScope> off = ResolveQueryScope(t, q, PruningOff());
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->stats.chunks_pruned, 0u);
  EXPECT_EQ(off->stats.chunks_scanned, 20u);
  EXPECT_EQ(off->stats.rows_visited, 1000u);
}

TEST(ZoneMapTest, FullyRefutedQueryVisitsNoRows) {
  Table t = ClusteredTable(500, 50);
  SpQuery q;
  q.filters = {Predicate::Num("ts", CmpOp::kGt, 10000.0)};
  const ScanStats stats = ExpectBitIdentical(t, q);
  EXPECT_EQ(stats.rows_visited, 0u);
  EXPECT_EQ(stats.rows_matched, 0u);
  EXPECT_EQ(stats.chunks_pruned, 10u);
  EXPECT_EQ(stats.chunks_scanned, 0u);
}

TEST(ZoneMapTest, NullOperatorsPruneByNullCount) {
  Table t = ClusteredTable(300, 100);  // ts has no nulls at all.
  SpQuery is_null;
  is_null.filters = {Predicate::IsNull("ts")};
  const ScanStats stats = ExpectBitIdentical(t, is_null);
  EXPECT_EQ(stats.chunks_pruned, 3u);
  EXPECT_EQ(stats.rows_visited, 0u);

  SpQuery not_null;
  not_null.filters = {Predicate::NotNull("ts")};
  const ScanStats keep_all = ExpectBitIdentical(t, not_null);
  EXPECT_EQ(keep_all.chunks_pruned, 0u);
  EXPECT_EQ(keep_all.rows_matched, 300u);
}

TEST(ZoneMapTest, NaNLiteralRefutesAllButNe) {
  Table t = ClusteredTable(200, 50);
  SpQuery eq_nan;
  eq_nan.filters = {Predicate::Num("ts", CmpOp::kEq, std::nan(""))};
  const ScanStats stats = ExpectBitIdentical(t, eq_nan);
  EXPECT_EQ(stats.rows_visited, 0u);
  EXPECT_EQ(stats.chunks_pruned, 4u);

  // x != NaN is true for every non-null value — nothing may be pruned.
  SpQuery ne_nan;
  ne_nan.filters = {Predicate::Num("ts", CmpOp::kNe, std::nan(""))};
  const ScanStats ne_stats = ExpectBitIdentical(t, ne_nan);
  EXPECT_EQ(ne_stats.chunks_pruned, 0u);
  EXPECT_EQ(ne_stats.rows_matched, 200u);
}

TEST(ZoneMapTest, CrossColumnRefutationMergesIntervals) {
  // Chunk layouts differ per column: ts is 4x50, tag is one 200-row chunk.
  // Pruning merges refuted intervals across columns, and a chunk counts as
  // pruned when ANOTHER column's conjunct covers its whole range.
  std::vector<double> ts(200);
  for (size_t i = 0; i < 200; ++i) ts[i] = static_cast<double>(i);
  std::vector<std::string> tag(200, "x");
  Result<Table> made =
      Table::Make({Column::Numeric("ts", ts).Rechunked(50),
                   Column::Categorical("tag", tag)});
  ASSERT_TRUE(made.ok());
  SpQuery q;
  q.filters = {Predicate::Num("ts", CmpOp::kLt, 50.0),
               Predicate::Str("tag", CmpOp::kEq, "x")};
  const ScanStats stats = ExpectBitIdentical(*made, q);
  // ts refutes chunks [50,100),[100,150),[150,200); tag's single chunk
  // still spans surviving rows, so it scans. 1 ts chunk + 1 tag chunk scan.
  EXPECT_EQ(stats.chunks_pruned, 3u);
  EXPECT_EQ(stats.chunks_scanned, 2u);
  EXPECT_EQ(stats.rows_visited, 50u);
  EXPECT_EQ(stats.code_eval_predicates, 1u);
}

// ---- Dictionary-code resolution ------------------------------------------

TEST(DictCodeTest, AbsentValueEqualityRefutesEveryChunk) {
  Table t = ClusteredTable(400, 100);
  SpQuery q;
  q.filters = {Predicate::Str("tag", CmpOp::kEq, "never-seen")};
  const ScanStats stats = ExpectBitIdentical(t, q);
  EXPECT_EQ(stats.rows_matched, 0u);
  EXPECT_EQ(stats.rows_visited, 0u);
  // tag is a single sealed chunk; equality against an absent value is
  // provably empty without consulting the chunk's zone.
  EXPECT_EQ(stats.chunks_pruned, 1u);
  EXPECT_EQ(stats.code_eval_predicates, 1u);
}

TEST(DictCodeTest, NegatedConjuncts) {
  // "tag != hot" keeps the cold rows; "tag != absent" keeps every non-null.
  Column tag = Column::Categorical("tag", {"hot", "cold", "", "cold", "hot"});
  Result<Table> made = Table::Make({std::move(tag)});
  ASSERT_TRUE(made.ok());

  SpQuery ne_present;
  ne_present.filters = {Predicate::Str("tag", CmpOp::kNe, "hot")};
  Result<QueryScope> on = ResolveQueryScope(*made, ne_present, PruningOn());
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->row_ids, (std::vector<size_t>{1, 3}));  // Null row 2 fails.
  ExpectBitIdentical(*made, ne_present);

  SpQuery ne_absent;
  ne_absent.filters = {Predicate::Str("tag", CmpOp::kNe, "absent")};
  Result<QueryScope> all = ResolveQueryScope(*made, ne_absent, PruningOn());
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->row_ids, (std::vector<size_t>{0, 1, 3, 4}));
  ExpectBitIdentical(*made, ne_absent);
}

TEST(DictCodeTest, UniformChunkRefutedByCodeSet) {
  // Two chunks: all-"a" then all-"b". "tag == b" must refute the first by
  // its code set and keep the second whole.
  std::vector<std::string> vals(100, "a");
  vals.insert(vals.end(), 100, "b");
  Result<Table> made =
      Table::Make({Column::Categorical("tag", vals).Rechunked(100)});
  ASSERT_TRUE(made.ok());
  SpQuery q;
  q.filters = {Predicate::Str("tag", CmpOp::kEq, "b")};
  const ScanStats stats = ExpectBitIdentical(*made, q);
  EXPECT_EQ(stats.chunks_pruned, 1u);
  EXPECT_EQ(stats.chunks_scanned, 1u);
  EXPECT_EQ(stats.rows_visited, 100u);
  EXPECT_EQ(stats.rows_matched, 100u);
}

TEST(DictCodeTest, StringOrderComparisonsRunOverCodes) {
  Column tag =
      Column::Categorical("tag", {"apple", "pear", "fig", "apple", "zv"});
  Result<Table> made = Table::Make({std::move(tag)});
  ASSERT_TRUE(made.ok());
  for (const CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt, CmpOp::kGe}) {
    SpQuery q;
    q.filters = {Predicate::Str("tag", op, "fig")};
    const ScanStats stats = ExpectBitIdentical(*made, q);
    EXPECT_EQ(stats.code_eval_predicates, 1u);
  }
}

TEST(DictCodeTest, RestrictedPathUsesCodesAndStaysBitIdentical) {
  Table t = ClusteredTable(600, 100);
  SpQuery parent;
  parent.filters = {Predicate::Num("ts", CmpOp::kLt, 300.0)};
  Result<QueryScope> parent_scope = ResolveQueryScope(t, parent, PruningOn());
  ASSERT_TRUE(parent_scope.ok());

  SpQuery child = parent;
  child.filters.push_back(Predicate::Str("tag", CmpOp::kEq, "hot"));
  const std::vector<Predicate> extra = ExtraConjuncts(parent, child);
  ASSERT_EQ(extra.size(), 1u);
  Result<QueryScope> restricted =
      RestrictQueryScope(t, parent_scope->row_ids, child, extra);
  ASSERT_TRUE(restricted.ok());
  EXPECT_EQ(restricted->stats.code_eval_predicates, 1u);
  EXPECT_TRUE(restricted->stats.restricted);

  Result<QueryScope> full = ResolveQueryScope(t, child, PruningOff());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(restricted->row_ids, full->row_ids);
  EXPECT_EQ(restricted->col_ids, full->col_ids);
}

// ---- Open-tail / append invalidation (the stale-zone hazard) -------------

TEST(ZoneMapTest, AppendPastRefutedZoneIsNeverPruned) {
  // Base: ts in [0, 100). The query's zone refutes every base chunk. A
  // batch appended AFTER the base was sealed must still be found — appended
  // rows land in a new sealed chunk with fresh stats, never under a stale
  // zone.
  Table base = ClusteredTable(100, 25);
  SpQuery q;
  q.filters = {Predicate::Num("ts", CmpOp::kGe, 1000.0)};
  EXPECT_EQ(ExpectBitIdentical(base, q).rows_matched, 0u);

  Result<Table> batch = Table::Make(
      {Column::Numeric("ts", {1000.0, 1001.0}),
       Column::Categorical("tag", {"hot", "cold"})});
  ASSERT_TRUE(batch.ok());
  Result<Table> grown = base.AppendRows(*batch);
  ASSERT_TRUE(grown.ok());

  const ScanStats stats = ExpectBitIdentical(*grown, q);
  EXPECT_EQ(stats.rows_matched, 2u);
  Result<QueryScope> on = ResolveQueryScope(*grown, q, PruningOn());
  ASSERT_TRUE(on.ok());
  EXPECT_EQ(on->row_ids, (std::vector<size_t>{100, 101}));
  // The base's 4 ts chunks are still refuted; only the batch chunk scans.
  EXPECT_EQ(stats.chunks_pruned, 4u);
  EXPECT_EQ(stats.chunks_scanned, 1u);
}

TEST(ZoneMapTest, StreamAppendExtendsZonesBitIdentically) {
  Result<std::unique_ptr<stream::StreamingTable>> opened =
      stream::StreamingTable::Open(ClusteredTable(200, 50));
  ASSERT_TRUE(opened.ok());
  stream::StreamingTable& streaming = **opened;

  SpQuery q;
  q.filters = {Predicate::Num("ts", CmpOp::kGe, 150.0),
               Predicate::Str("tag", CmpOp::kEq, "hot")};
  for (int step = 0; step < 4; ++step) {
    std::vector<double> ts;
    std::vector<std::string> tag;
    const size_t start = streaming.num_rows();
    for (size_t i = 0; i < 30; ++i) {
      ts.push_back(static_cast<double>(start + i));
      tag.push_back((start + i) % 7 == 0 ? "hot" : "cold");
    }
    Result<Table> batch = Table::Make(
        {Column::Numeric("ts", ts), Column::Categorical("tag", tag)});
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(streaming.Append(*batch).ok());
    ExpectBitIdentical(*streaming.Current().table, q);
  }
}

TEST(ZoneMapTest, ConcurrentScansVsStreamAppends) {
  Result<std::unique_ptr<stream::StreamingTable>> opened =
      stream::StreamingTable::Open(ClusteredTable(400, 100));
  ASSERT_TRUE(opened.ok());
  stream::StreamingTable& streaming = **opened;

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&streaming, &done, &failures, r] {
      SpQuery q;
      q.filters = {Predicate::Num("ts", CmpOp::kGe, 100.0 * (r + 1)),
                   Predicate::Num("ts", CmpOp::kLt, 100.0 * (r + 2))};
      while (!done.load(std::memory_order_acquire)) {
        // Each reader pins ONE snapshot and compares pruned, parallel-pruned
        // and unpruned scans over it — appends race only with snapshot
        // acquisition, never with the scan itself.
        std::shared_ptr<const Table> snap = streaming.Current().table;
        Result<QueryScope> on = ResolveQueryScope(*snap, q, PruningOn());
        Result<QueryScope> par = ResolveQueryScope(*snap, q, PruningOn(4));
        Result<QueryScope> off = ResolveQueryScope(*snap, q, PruningOff());
        if (!on.ok() || !off.ok() || !par.ok() ||
            on->row_ids != off->row_ids || par->row_ids != off->row_ids) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int step = 0; step < 20; ++step) {
    std::vector<double> ts;
    std::vector<std::string> tag;
    const size_t start = streaming.num_rows();
    for (size_t i = 0; i < 25; ++i) {
      ts.push_back(static_cast<double>(start + i));
      tag.push_back("t" + std::to_string((start + i) % 5));
    }
    Result<Table> batch = Table::Make(
        {Column::Numeric("ts", ts), Column::Categorical("tag", tag)});
    ASSERT_TRUE(batch.ok());
    ASSERT_TRUE(streaming.Append(*batch).ok());
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---- Randomized differential ---------------------------------------------

TEST(ZoneMapTest, RandomizedDifferential) {
  std::mt19937 rng(20230407);
  const std::vector<std::string> words = {"aa", "bb", "cc", "dd", "ee",
                                          "ff", "gg", "hh"};
  for (int iter = 0; iter < 60; ++iter) {
    const size_t n = 40 + rng() % 400;
    std::vector<double> nums;
    std::vector<std::string> cats;
    for (size_t i = 0; i < n; ++i) {
      // Clustered-ish numeric values so zones sometimes refute; ~8% nulls.
      const double base = static_cast<double>(i / 50) * 100.0;
      nums.push_back(rng() % 12 == 0 ? std::nan("")
                                     : base + static_cast<double>(rng() % 100));
      cats.push_back(rng() % 10 == 0 ? "" : words[(i / 37) % words.size()]);
    }
    const size_t chunk_rows = std::vector<size_t>{0, 1, 7, 33, 64}[rng() % 5];
    Result<Table> made = Table::Make(
        {Column::Numeric("num", nums).Rechunked(chunk_rows),
         Column::Categorical("cat", cats).Rechunked(chunk_rows ? 29 : 0)});
    ASSERT_TRUE(made.ok());
    // Sometimes grow by a batch, exercising appended-chunk stats.
    Table t = *made;
    if (rng() % 3 == 0) {
      Result<Table> batch = Table::Make(
          {Column::Numeric("num", {9999.0, std::nan(""), -50.0}),
           Column::Categorical("cat", {"zz", "aa", ""})});
      ASSERT_TRUE(batch.ok());
      Result<Table> grown = t.AppendRows(*batch);
      ASSERT_TRUE(grown.ok());
      t = *grown;
    }

    SpQuery q;
    const size_t num_preds = 1 + rng() % 3;
    for (size_t p = 0; p < num_preds; ++p) {
      const CmpOp op = static_cast<CmpOp>(rng() % 8);
      if (rng() % 2 == 0) {
        const double lit = rng() % 16 == 0
                               ? std::nan("")
                               : static_cast<double>(rng() % 1000);
        q.filters.push_back(Predicate::Num("num", op, lit));
      } else {
        // Absent literals ("absent") exercise the provably-empty path.
        const std::string lit =
            rng() % 5 == 0 ? "absent" : words[rng() % words.size()];
        q.filters.push_back(Predicate::Str("cat", op, lit));
      }
    }
    if (rng() % 3 == 0) {
      q.order_by = rng() % 2 == 0 ? "num" : "cat";
      q.descending = rng() % 2 == 0;
    }
    if (rng() % 4 == 0) q.limit = 1 + rng() % 20;

    ExpectBitIdentical(t, q);
  }
}

}  // namespace
}  // namespace subtab
